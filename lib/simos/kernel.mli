(** The simulated operating system: syscall semantics and their costs.

    A [Kernel.t] owns a set of data volumes (one {!Fs} per {!Disk}), a swap
    disk, physical {!Memory}, and the CPUs.  Simulated processes receive an
    {!env} handle and interact with the kernel exclusively through the
    syscalls below; every call advances the calling fiber's virtual time by
    the modelled cost (noised per the platform's [noise_sigma]).

    Paths name a volume by their first component: ["/d0/inputs/f17"] is
    file [/inputs/f17] of volume 0.  The fifth disk of the paper's Figure 7
    setup is the dedicated swap disk, always present.

    Gray-box clients (the ICLs, the applications) must restrict themselves
    to this interface plus {!gettime}; white-box ground truth lives in
    {!Introspect}. *)

type t
type env

type fd = int
(** File descriptors are plain ints (per-process). *)

type error =
  | Fs_error of Fs.error
  | Bad_fd
  | Bad_path
  | Retryable
  | Timeout  (** a host syscall missed its deadline (host backend only) *)
  | Unsupported of string
      (** the backend lacks a capability (host backend only) *)
  | Sys_error of string
      (** uncategorised host errno, carried by name (host backend only) *)

val error_to_string : error -> string
(** [Retryable] is an injected EINTR/EAGAIN-style transient failure (only
    ever returned when a {!Fault} scenario is installed); callers should
    back off and retry — see [Graybox_core.Resilient].

    The last three constructors exist so the host backend
    ([Graybox_core.Os_host]) shares this taxonomy literally with the
    fault plane's injected errors: the simulated kernel {e never}
    produces [Timeout], [Unsupported] or [Sys_error]. *)

(** {1 Boot and processes} *)

val boot :
  engine:Engine.t ->
  platform:Platform.t ->
  ?data_disks:int ->
  ?volume_blocks:int ->
  ?faults:Fault.scenario ->
  ?crash:Crash.scenario ->
  ?drift:Drift.scenario ->
  ?account:bool ->
  ?flight:bool ->
  ?sched:Sched.config ->
  ?procs:int ->
  seed:int ->
  unit ->
  t
(** [data_disks] defaults to 4 (paper setup); [volume_blocks] defaults to
    the disk capacity.  [faults] installs a fault-injection scenario
    (default: the platform's [faults] field, usually none); when absent the
    kernel performs no fault-related work at all.  [crash] installs the
    crash–restart plane (default: [GRAYBOX_CRASH] from the environment);
    when absent there is no durability distinction and no per-syscall
    work — see {!durability_on}.  [drift] installs the environment-drift
    plane (default: [GRAYBOX_DRIFT]); when absent the kernel's clock and
    memory configuration never change mid-run and no drift-related work
    happens at all.

    [account] turns the per-process accounting ledger on or off
    (default: [GRAYBOX_ACCOUNT], on when unset) and [flight] likewise
    the flight recorder (default: [GRAYBOX_FLIGHT], on when unset).
    Unlike the planes above, both default to {e on}: neither draws RNG
    nor advances the clock, so the simulation's observable behaviour is
    identical either way — off exists to prove the zero-cost claim and
    to pin the pre-accounting byte shape of explicit exports.

    [sched] installs a proportional-share run queue (default: none —
    the legacy whole-burst FCFS dispatch).  With it, {!compute} slices
    contended bursts into weighted quanta so no runnable process
    starves; while a single process is registered the legacy path is
    taken exactly, making an uncontended scheduler kernel byte-identical
    to a scheduler-less one (the fleet ≡ solo contract, see {!Sched}).
    [procs] (default 16) sizes the process table up front so fleets of
    10⁴–10⁵ processes never rehash it mid-run. *)

val engine : t -> Engine.t
val platform : t -> Platform.t
val data_disks : t -> int
val volume_root : int -> string
(** ["/d<i>"]. *)

val spawn : t -> ?name:string -> ?weight:int -> ?at:int -> (env -> unit) -> unit
(** Create a process whose body runs as an engine fiber.  File descriptors
    and anonymous memory are reclaimed when the body returns (or raises).
    [weight] (default 1) is the process's proportional CPU share under a
    scheduler kernel — ignored without [?sched].  When accounting is on,
    a process's ledger rows are reaped into name-keyed aggregates at exit
    (see {!Account.note_exit}), so fleet-scale runs don't leak a row per
    dead pid. *)

val run : t -> unit
(** [Engine.run] shortcut. *)

val pid : env -> int
val kernel_of_env : env -> t

(** {1 Accounting and flight recorder} *)

val account : t -> Account.t option
(** The per-process accounting ledger, when on.  Within one boot epoch
    (no {!restart}), per-pid cells sum exactly to the matching global
    counters: hits + misses across pids equal the pool counters,
    per-kind syscall counts equal the telemetry [.calls] counters, and
    eviction blame row sums equal the ["simos.kernel.evictions"]
    total. *)

val flight : t -> Gray_util.Flight.t option
(** The always-on flight recorder.  Syscall entries, evictions, fault
    injections, drift mutations — all in simulated time.  Survives
    {!restart} (it is the black box; the pre-crash tail is the point),
    though the fresh engine restarts its timestamps from 0. *)

val sched : t -> Sched.t option
(** The proportional-share run queue, when installed at boot. *)

val cpu_busy_ns : t -> int
(** Total ns the CPUs have been reserved for since boot — the
    denominator of the scheduler property "per-pid CPU-ns sums to total
    CPU-ns" ([test/test_sched.ml]). *)

val fresh_token : env -> int
(** Per-process monotone counter (1, 2, ...).  Combined with {!pid} it
    yields names unique within a kernel without any global state, so
    independent kernels on separate domains stay bit-identical. *)

(** {1 Time} *)

val gettime : env -> int
(** Process-visible clock: virtual now, quantised to the platform timer
    resolution.  Cheap (no cost is charged), like rdtsc. *)

(** {1 File syscalls} *)

val open_file : env -> string -> (fd, error) result
val create_file : env -> string -> (fd, error) result
(** Create (exclusive) and open. *)

val close : env -> fd -> unit

val read : env -> fd -> off:int -> len:int -> (int, error) result
(** Positional read.  Returns the byte count actually read (short at end of
    file, [0] at or past it).  Misses fetch whole pages into the file cache
    — probing a page is destructive, the paper's Heisenberg effect. *)

val write : env -> fd -> off:int -> len:int -> (int, error) result
(** Positional write, extending the file as needed; dirty pages are written
    back on eviction (write-behind). *)

val file_size : env -> fd -> int

val mkdir : env -> string -> (unit, error) result
val unlink : env -> string -> (unit, error) result
val rename : env -> src:string -> dst:string -> (unit, error) result
val readdir : env -> string -> (string list, error) result
val stat : env -> string -> (Fs.stat_info, error) result
(** Reads the inode (a disk access when its inode-table block is not
    cached; "at most a few milliseconds", Section 4.2.2). *)

val utimes : env -> string -> atime:int -> mtime:int -> (unit, error) result

(** {1 Durability syscalls}

    Only meaningful under the crash plane: namespace operations are always
    durable at the syscall (FFS-style synchronous metadata), while file
    data, sizes, times and blobs are write-back and survive a crash only
    once flushed.  Without a plane installed, {!fsync} and {!sync} are
    free no-ops — there is nothing to be durable against. *)

val fsync : env -> fd -> (unit, error) result
(** Write back the file's dirty pages (batching contiguous blocks) and
    its inode; on return the file's durable image equals its volatile
    one. *)

val sync : env -> unit
(** {!fsync} for the whole machine: every dirty file page, every volume,
    one elevator pass per volume, then all metadata. *)

val write_blob : env -> fd -> string -> (unit, error) result
(** Replace the file's side-band content (the FLDC journal records live
    here) — volatile until {!fsync}ed, like any write.  Charged one
    syscall plus a memcopy of the string. *)

val read_blob : env -> fd -> (string, error) result
(** Current (volatile) side-band content; [""] if never written. *)

(** {1 Memory syscalls} *)

type region

val valloc : env -> pages:int -> region
(** Reserve address space; frames are allocated on first touch. *)

val vfree : env -> region -> unit
val region_pages : region -> int

val vrelease : env -> region -> first:int -> count:int -> unit
(** madvise(MADV_DONTNEED)-style: drop the frames and swap slots backing a
    page range of the region.  Contents are lost; the next touch
    demand-zeroes.  Used to give memory back without unmapping. *)

val touch_pages : env -> region -> first:int -> count:int -> int array
(** Write one byte to each page of [region.[first .. first+count-1]] in
    order, returning the {e observed} per-page times (noised and quantised
    like back-to-back timer reads).  Fresh pages are demand-zeroed; pages
    that were paged out come back from the swap disk; under memory pressure
    each fill may evict (and write back) a victim.  Advances time by the
    total. *)

type vmstat = { vm_page_ins : int; vm_page_outs : int }

val vmstat : env -> vmstat
(** System-wide paging activity counters, as the real [vmstat] would
    report them.  This is a legitimate narrow interface some systems
    offer; the paper's MAC deliberately avoids it ("we observe only time
    in order to explore those environments with very limited
    interfaces"), but the ablation benches compare both. *)

(** {1 CPU} *)

val compute : env -> ns:int -> unit
(** Burn CPU time; contends for the platform's CPUs. *)

val compute_bytes : env -> bytes:int -> ns_per_byte:float -> unit

(** {1 Fault plane (experiment control, not for ICLs)} *)

val fault_plane : t -> Fault.t option
(** The installed fault plane, for stats and scenario inspection. *)

val start_fault_daemons : t -> unit
(** Spawn the scenario's background interference as simulated processes: a
    cache disturber that evicts random file pages while ICLs probe, and a
    memory-pressure fiber that touches/releases anonymous memory in waves.
    Both exit at their scenario horizon (or on {!stop_faults}), so
    {!run} still terminates.  No-op without a fault plane. *)

val stop_faults : t -> unit
(** Ask the fault daemons to exit at their next wake-up. *)

(** {1 Drift plane (experiment control, not for ICLs)} *)

val drift_plane : t -> Drift.t option
(** The installed drift plane, for stats and scenario inspection. *)

val start_drift_daemon : t -> unit
(** Spawn one simulated process that replays the drift schedule against
    the virtual clock: cache resizes (shrink victims written back like any
    capacity miss), replacement-policy swaps, timer-resolution changes,
    and sustained memory-pressure regimes (held pages re-touched every
    [dr_retouch_ns] so the regime stays resident).  The fiber exits after
    the last event — or at the scenario horizon while a pressure regime is
    held — so {!run} still terminates.  No-op without a drift plane or
    with an event-free scenario ({!Drift.quiet}). *)

val stop_drift : t -> unit
(** Ask the drift daemon to exit at its next wake-up. *)

(** {1 Crash plane (experiment control, not for ICLs)} *)

val crash_plane : t -> Crash.t option

val durability_on : t -> bool
(** Whether a crash plane is installed.  ICL code uses this to decide
    whether to pay for journaling + fsync (under a plane, where crashes
    are possible) or to run the plain legacy path (without one, where the
    extra syscalls would change benign-run behaviour for nothing). *)

val restart : t -> unit
(** Reboot after a crash: discard all volatile state (page cache,
    anonymous memory, swap residency, processes), roll every volume back
    to its durable image ({!Fs.crash}), reset device timelines, and
    install a fresh engine at time 0.  The crash plane is disarmed; spawn
    recovery processes and {!run} again.  Counters and RNG streams
    survive — they describe the experiment, not the machine.  The
    per-process accounting ledger does {e not} (the rebooted machine has
    no processes), nor does the run queue ({!Sched.reset} — registrations
    and grants are machine state), and a drift plane's timer/pressure
    regime lapses (its daemon died with the crash); the flight recorder
    keeps its pre-crash tail. *)

val install_volume_image : t -> int -> Fs.t -> unit
(** Adopt [fs] as volume [i]'s file system.  A freshly booted kernel
    carrying a rolled-back durable image ({!Fs.clone} + {!Fs.crash}) is
    the restarted machine of {!restart}, minus the armed replay that
    produced the image — the snapshot-mode crash explorer builds its
    per-boundary kernels this way.  Must be called before any process
    runs: resident file pages and open descriptors are keyed by the old
    volume's inodes, and on a fresh boot both sets are empty. *)

(** {1 Experiment control (used between runs, not by ICLs)} *)

val flush_file_cache : t -> unit
(** Instantly drop all file pages (the experiments' cache flush between
    trials). *)

val drop_all_memory : t -> unit
(** Drop file and anonymous pages and forget swap state (fresh boot). *)

(** {1 Counters} *)

type counters = {
  c_reads : int;
  c_writes : int;
  c_bytes_read : int;
  c_bytes_written : int;
  c_page_ins : int;  (** anonymous page-ins from swap *)
  c_page_outs : int;  (** anonymous page-outs to swap *)
  c_zero_fills : int;
  c_file_fetches : int;  (** file pages fetched from disk *)
  c_file_writebacks : int;
}

val counters : t -> counters
val reset_counters : t -> unit

(** {1 White-box access (for {!Introspect} and tests only)} *)

val memory : t -> Memory.t
val volume_fs : t -> int -> Fs.t
val volume_disk : t -> int -> Disk.t
val swap_disk : t -> Disk.t
val resolve_path : t -> string -> (int * string, error) result
(** Split ["/d0/a/b"] into [(0, "/a/b")]. *)

val global_ino : t -> volume:int -> ino:int -> int
(** The inode identity used in {!Page.key} file pages. *)

val swapped_pages : t -> pid:int -> int
(** Anonymous pages of this process currently on the swap disk. *)

val live_procs : t -> int
(** Processes whose fiber has started and not yet cleaned up — crashed
    fibers must not linger here (their fds and memory are reclaimed on the
    crash path). *)
