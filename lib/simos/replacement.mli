(** Page-replacement policies.

    A policy tracks the set of resident page keys — including each page's
    dirty bit, so the hot path costs one hash lookup — and chooses eviction
    victims; the enclosing {!Pool} enforces capacity and counts.  Each
    call to a factory creates an independent stateful instance (a
    first-class module).

    Policies provided:
    - [lru] — exact least-recently-used (list + hash table);
    - [clock] — one-hand clock with reference bits, the classical LRU
      approximation ("any operating system using an approximation of LRU,
      such as the clock algorithm", Section 4.1.1);
    - [fifo] — insertion order, ignores hits;
    - [mru_sticky] — evicts the {e most} recently inserted/used page, so the
      first data loaded stays resident; models the persistent Solaris 7 file
      cache observed in Section 4.1.3 ("once a file is placed in the Solaris
      file cache, it is quite difficult to dislodge");
    - [two_q] — simplified 2Q: a FIFO probation queue in front of a
      protected LRU main queue;
    - [segmented_lru] — probationary + protected LRU segments. *)

module type POLICY = sig
  val name : string
  val mem : Page.key -> bool

  val is_dirty : Page.key -> bool
  (** Dirty bit of a resident key; [false] for unknown keys. *)

  val access : Page.key -> dirty:bool -> bool
  (** Single-lookup hit path: when the key is resident, record the hit
      (reorder / age per the policy), OR in [dirty], and return [true].
      When it is not, return [false] {e without} touching any policy
      state — the caller decides whether to {!insert}. *)

  val insert : Page.key -> dirty:bool -> unit
  (** Add a key that must not currently be present. *)

  val evict : (Page.key -> dirty:bool -> unit) -> bool
  (** Choose an eviction victim, remove it, and hand it (with its dirty
      bit) to the callback; [false] when no page is resident.  The
      callback form keeps the per-eviction path allocation-free. *)

  val remove : Page.key -> bool
  (** Drop a key (invalidation, not eviction — no victim callback);
      [true] if it was resident.  Returning presence lets range
      invalidation probe each candidate exactly once instead of
      [mem]-then-[remove]. *)

  val clean : Page.key -> unit
  (** Drop a resident key's dirty bit without evicting it (writeback in
      place — the fsync path).  Unknown keys are ignored. *)

  val size : unit -> int
  val iter : (Page.key -> unit) -> unit
end

type t = (module POLICY)

type factory = capacity:int -> t
(** [capacity] is a sizing hint (2Q and segmented-LRU partition it);
    policies never refuse inserts — the pool evicts before inserting. *)

val name : t -> string
val lru : factory
val clock : factory
val fifo : factory
val mru_sticky : factory
val two_q : factory
val segmented_lru : factory

val eelru : factory
(** Approximate EELRU (cited by the paper as the adaptive escape from
    "LRU worst-case mode"): evicts at an early recency point instead of
    the tail when recently evicted pages keep coming back — i.e. when the
    workload loops over more data than fits. *)

val of_name : string -> factory
(** Look up a factory by policy name; raises [Invalid_argument] on unknown
    names.  Useful for CLI flags and ablation sweeps. *)

val all_names : string list
