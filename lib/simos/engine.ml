module Tele = Gray_util.Telemetry

type _ Effect.t += Delay : int -> unit Effect.t

exception Fiber_crash of string * exn
exception Cancelled

let () =
  Printexc.register_printer (function
    | Fiber_crash (name, exn) ->
      Some (Printf.sprintf "Fiber_crash(%s: %s)" name (Printexc.to_string exn))
    | _ -> None)

type job = Job : ('a, unit) Effect.Shallow.continuation * 'a -> job
type event = { time : int; seq : int; name : string; job : job }

type t = {
  queue : event Gray_util.Pqueue.t;
  mutable now : int;
  mutable seq : int;
  mutable events : int;
  mutable running : bool;
}

(* Exactly one engine runs at a time *per domain*, so [delay] finds its
   engine through this domain-local slot rather than threading it through
   every syscall.  Domain-local (rather than global) state is what lets
   independent simulations run on separate domains of a pool without
   seeing each other. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let compare_events a b =
  if a.time <> b.time then compare a.time b.time else compare a.seq b.seq

let create () =
  {
    queue = Gray_util.Pqueue.create ~cmp:compare_events;
    now = 0;
    seq = 0;
    events = 0;
    running = false;
  }

let now t = t.now

let push t ~time ~name job =
  t.seq <- t.seq + 1;
  Gray_util.Pqueue.push t.queue { time; seq = t.seq; name; job }

let spawn t ?at ?(name = "proc") f =
  let time = Option.value at ~default:t.now in
  if time < t.now then invalid_arg "Engine.spawn: start time in the past";
  push t ~time ~name (Job (Effect.Shallow.fiber f, ()))

let delay d =
  if d < 0 then invalid_arg "Engine.delay: negative duration";
  match Domain.DLS.get current with
  | None -> failwith "Engine.delay: not inside a running fiber"
  | Some _ -> Effect.perform (Delay d)

let run t =
  if t.running then failwith "Engine.run: already running";
  (match Domain.DLS.get current with
  | Some _ -> failwith "Engine.run: another engine is running on this domain"
  | None -> ());
  t.running <- true;
  Domain.DLS.set current (Some t);
  (* While this engine runs, telemetry timestamps are virtual time — a
     span around a syscall measures simulated, not wall, nanoseconds. *)
  let tele = Tele.active () in
  let restore_clock =
    match tele with None -> fun () -> () | Some _ -> Tele.install_clock (fun () -> t.now)
  in
  let run_t0 = t.now in
  let fiber_name = ref "?" in
  let handler : (unit, unit) Effect.Shallow.handler =
    {
      retc = (fun () -> ());
      exnc = (fun exn -> raise (Fiber_crash (!fiber_name, exn)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
            Some
              (fun (k : (a, unit) Effect.Shallow.continuation) ->
                push t ~time:(t.now + d) ~name:!fiber_name (Job (k, ())))
          | _ -> None);
    }
  in
  let finish () =
    (match tele with
    | None -> ()
    | Some s ->
      Tele.span_end s "simos.engine.run" ~ts:run_t0
        ~attrs:(fun () -> [ ("events", Tele.Int t.events) ]));
    restore_clock ();
    t.running <- false;
    Domain.DLS.set current None
  in
  (* When a fiber crashes, the run aborts — but the other fibers may be
     parked mid-syscall holding resources (fds, anonymous memory) whose
     reclamation lives in [Fun.protect] finalisers on their stacks.  Unwind
     each parked continuation with [Cancelled] so those finalisers run; a
     finaliser that performs [Delay] during the unwind is resumed
     immediately (virtual time no longer advances). *)
  let drain_cancelled () =
    let rec cancel_handler : (unit, unit) Effect.Shallow.handler =
      {
        retc = (fun () -> ());
        exnc = (fun _ -> ());
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Delay _ ->
              Some
                (fun (k : (a, unit) Effect.Shallow.continuation) ->
                  Effect.Shallow.continue_with k () cancel_handler)
            | _ -> None);
      }
    in
    let rec go () =
      match Gray_util.Pqueue.pop t.queue with
      | None -> ()
      | Some ev ->
        let (Job (k, _)) = ev.job in
        (try Effect.Shallow.discontinue_with k Cancelled cancel_handler
         with _ -> ());
        go ()
    in
    go ()
  in
  Fun.protect ~finally:finish (fun () ->
      let rec loop () =
        match Gray_util.Pqueue.pop t.queue with
        | None -> ()
        | Some ev ->
          t.now <- ev.time;
          t.events <- t.events + 1;
          (match tele with
          | None -> ()
          | Some s ->
            Tele.point s "simos.engine.dispatch"
              ~attrs:(fun () -> [ ("fiber", Tele.String ev.name) ]));
          fiber_name := ev.name;
          let (Job (k, v)) = ev.job in
          Effect.Shallow.continue_with k v handler;
          loop ()
      in
      try loop ()
      with Fiber_crash _ as crash ->
        drain_cancelled ();
        raise crash)

let events_processed t = t.events
