(** Disk service-time model.

    A first-order model of a c. 2001 SCSI disk (the paper's IBM 9LZX):
    distance-dependent seek, half-rotation average latency, fixed per-block
    transfer time, plus a track-buffer fast path for strictly sequential
    accesses.  The disk is also a FIFO queueing resource: requests
    dispatched while the disk is busy wait their turn. *)

type geometry = {
  model : string;
  cylinders : int;
  blocks_per_cylinder : int;  (** 4 KB blocks per cylinder *)
  seek_min_ns : int;  (** track-to-track *)
  seek_max_ns : int;  (** full-stroke *)
  rotation_ns : int;  (** one full revolution *)
  transfer_ns_per_block : int;
}

val ibm_9lzx : geometry
(** ~9 GB, 10 000 RPM: 0.8 ms track-to-track / 10.5 ms full-stroke seek,
    6 ms revolution, ~20 MB/s sustained transfer. *)

type t

val create : geometry -> t
val geometry : t -> geometry
val capacity_blocks : t -> int

val access : t -> now:int -> start_block:int -> nblocks:int -> int
(** [access t ~now ~start_block ~nblocks] reserves the disk for one
    contiguous transfer and returns the {e delay} until completion as seen
    by a caller at time [now] (queueing included).  Reads and writes are
    charged identically.  Raises [Invalid_argument] for out-of-range
    blocks. *)

val service_time : t -> start_block:int -> nblocks:int -> int
(** The bare service time the next [access] would take (no queueing, no
    state update) — used by the white-box models in the benches. *)

val seek_time : t -> from_cyl:int -> to_cyl:int -> int
val cylinder_of_block : t -> int -> int

(** {1 Counters} *)

val requests : t -> int
val blocks_transferred : t -> int
val sequential_hits : t -> int
(** Requests that continued exactly where the previous one ended. *)

val busy_ns : t -> int
val reset_counters : t -> unit

val reboot : t -> unit
(** Power-cycle for the crash–restart plane: home the arm, drop the track
    buffer, and clear the busy horizon (the fresh engine's clock restarts
    at 0).  Lifetime counters survive. *)
