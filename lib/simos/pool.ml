type evicted = { key : Page.key; dirty : bool }

type t = {
  name : string;
  mutable capacity : int;
  mutable policy : Replacement.t;  (* swappable mid-run by the drift plane *)
  mutable factory : Replacement.factory;  (* rebuilds [policy] for {!clear} *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~name ~capacity_pages ~policy =
  if capacity_pages <= 0 then invalid_arg "Pool.create: capacity must be positive";
  {
    name;
    capacity = capacity_pages;
    policy = policy ~capacity:capacity_pages;
    factory = policy;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let name t = t.name
let capacity t = t.capacity

let policy_name t =
  let (module P : Replacement.POLICY) = t.policy in
  P.name

(* Replace the replacement policy under a live pool (the drift plane's
   mid-run policy swap).  Resident pages carry over with their dirty bits;
   they re-enter the new policy instance in sorted key order — a fixed,
   schedule-independent order, so a swapped run stays deterministic.  The
   recency information of the old policy is deliberately lost: that is
   exactly the disturbance being modelled. *)
let set_policy t factory =
  let (module Old : Replacement.POLICY) = t.policy in
  let pages = ref [] in
  Old.iter (fun key -> pages := (key, Old.is_dirty key) :: !pages);
  let fresh = factory ~capacity:t.capacity in
  let (module New : Replacement.POLICY) = fresh in
  List.iter (fun (key, dirty) -> New.insert key ~dirty) (List.sort compare !pages);
  t.policy <- fresh;
  t.factory <- factory

let resident t =
  let (module P : Replacement.POLICY) = t.policy in
  P.size ()

let contains t key =
  let (module P : Replacement.POLICY) = t.policy in
  P.mem key

(* ---- fast path ---- *)

let try_hit t key ~dirty =
  let (module P : Replacement.POLICY) = t.policy in
  if P.access key ~dirty then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let fill t key ~dirty ~on_evict =
  let (module P : Replacement.POLICY) = t.policy in
  if P.size () >= t.capacity then begin
    let counted k ~dirty =
      t.evictions <- t.evictions + 1;
      on_evict k ~dirty
    in
    while P.size () >= t.capacity do
      if not (P.evict counted) then failwith "Pool.access: policy lost pages"
    done
  end;
  P.insert key ~dirty

let access_run t ~n ~key ~dirty ~on_hit ~on_miss ~on_evict ~on_page_end =
  let nev = ref 0 in
  let counting k ~dirty =
    incr nev;
    on_evict k ~dirty
  in
  for i = 0 to n - 1 do
    let k = key i in
    if try_hit t k ~dirty then begin
      on_hit i k;
      on_page_end i ~evicted:0
    end
    else begin
      on_miss i k;
      nev := 0;
      fill t k ~dirty ~on_evict:counting;
      on_page_end i ~evicted:!nev
    end
  done

(* ---- list-building compatibility path ---- *)

let access t key ~dirty =
  if try_hit t key ~dirty then `Hit
  else begin
    let out = ref [] in
    fill t key ~dirty ~on_evict:(fun k ~dirty -> out := { key = k; dirty } :: !out);
    `Filled (List.rev !out)
  end

let evict_one t =
  let (module P : Replacement.POLICY) = t.policy in
  let out = ref None in
  if
    P.evict (fun k ~dirty ->
        t.evictions <- t.evictions + 1;
        out := Some { key = k; dirty })
  then !out
  else None

let resize_into t ~capacity_pages ~on_evict =
  if capacity_pages <= 0 then invalid_arg "Pool.resize: capacity must be positive";
  t.capacity <- capacity_pages;
  let (module P : Replacement.POLICY) = t.policy in
  if P.size () > t.capacity then begin
    let counted k ~dirty =
      t.evictions <- t.evictions + 1;
      on_evict k ~dirty
    in
    while P.size () > t.capacity do
      if not (P.evict counted) then failwith "Pool.resize: policy lost pages"
    done
  end

let resize t ~capacity_pages =
  let out = ref [] in
  resize_into t ~capacity_pages ~on_evict:(fun k ~dirty ->
      out := { key = k; dirty } :: !out);
  List.rev !out

let take t key =
  let (module P : Replacement.POLICY) = t.policy in
  P.remove key

let invalidate t key = ignore (take t key)

let invalidate_if t pred =
  let (module P : Replacement.POLICY) = t.policy in
  let doomed = ref [] in
  P.iter (fun key -> if pred key then doomed := key :: !doomed);
  List.iter (invalidate t) !doomed;
  List.length !doomed

let drop_all t = ignore (invalidate_if t (fun _ -> true))

(* Forget every resident page at once by rebuilding a fresh policy
   instance from the stored factory — O(1) in the resident count, against
   [drop_all]'s iterate-then-remove.  Observably identical to [drop_all]:
   both leave an empty pool running the same policy, and neither touches
   the counters. *)
let clear t = t.policy <- t.factory ~capacity:t.capacity

let is_dirty t key =
  let (module P : Replacement.POLICY) = t.policy in
  P.is_dirty key

let clean t key =
  let (module P : Replacement.POLICY) = t.policy in
  P.clean key

let iter t f =
  let (module P : Replacement.POLICY) = t.policy in
  P.iter f

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
