(** Deterministic, seeded fault injection for the simulated OS.

    The paper's ICLs must survive an OS they cannot control: competing
    processes evict cache pages mid-probe (the Heisenberg effect,
    Section 4.1), background daemons steal CPU, timers are coarse, and
    real syscalls fail transiently (EINTR/EAGAIN).  A {!scenario}
    describes such a hostile observation channel; {!Kernel.boot} accepts
    one (or a {!Platform.t} can carry one) and injects the faults on the
    syscall path.  Every draw comes from a dedicated seeded {!Gray_util.Rng},
    so a faulty run is exactly as reproducible as a benign one.

    With no scenario installed the kernel performs {e zero} extra work and
    zero extra RNG draws: benign runs are bit-identical to a build without
    this module. *)

(** Syscalls eligible for transient-error injection.  Namespace ops
    ([Create]/[Unlink]/[Rename]/[Mkdir]) are absent from the canonical
    scenario's target list — eligibility is checked before any RNG draw,
    so adding them here does not perturb existing runs. *)
type target = Open | Read | Write | Stat | Create | Unlink | Rename | Mkdir

type burst = {
  bu_period_ns : int;  (** background-daemon cycle length *)
  bu_duration_ns : int;  (** busy window at the start of each cycle *)
  bu_extra_ns : int;  (** latency added to syscalls landing in the window *)
}
(** Periodic latency bursts: a daemon that wakes every [bu_period_ns] and
    hogs the machine for [bu_duration_ns]. *)

type disturbance = {
  di_period_ns : int;  (** interval between disturbance rounds *)
  di_evict_frac : float;  (** probability each resident file page is evicted *)
  di_horizon_ns : int;  (** the disturber exits at this virtual time *)
}
(** Mid-probe cache disturbance: a background fiber that evicts a random
    fraction of the file cache while FCCD probes — cache state shifting
    under the prober's feet. *)

type pressure = {
  pr_pages : int;  (** anonymous pages touched per wave *)
  pr_hold_ns : int;  (** how long the wave holds its memory *)
  pr_gap_ns : int;  (** idle time between waves *)
  pr_horizon_ns : int;  (** the pressure fiber exits at this virtual time *)
}
(** Transient memory-pressure waves against MAC: a competitor that
    periodically touches a slab of anonymous memory, holds it, releases
    it, and sleeps. *)

type scenario = {
  sc_name : string;
  sc_seed : int;  (** seeds the fault plane's private RNG *)
  sc_error_prob : float;  (** per-call transient-failure probability *)
  sc_error_targets : target list;
  sc_burst : burst option;
  sc_spike_prob : float;  (** per-call probability of a random spike *)
  sc_spike_ns : int;  (** magnitude of a random latency spike *)
  sc_timer_factor : int;  (** timer resolution multiplier (>= 1) *)
  sc_timer_jitter_ns : int;  (** uniform jitter added to clock reads *)
  sc_disturb : disturbance option;
  sc_pressure : pressure option;
}

val quiet : scenario
(** Everything off — installing it is indistinguishable from no plane. *)

val canonical : scenario
(** The reference hostile environment used by the fault benches and the
    second CI pass: 2% transient errors on probes, periodic bursts, random
    spikes, 4x timer coarsening, a cache disturber and pressure waves. *)

val heavy : scenario
(** [canonical] at double intensity. *)

val scale : scenario -> intensity:float -> scenario
(** Scale every probability/magnitude linearly; [intensity = 0.] gives
    {!quiet} behaviour, [1.] the scenario itself. *)

val of_intensity : ?seed:int -> intensity:float -> unit -> scenario
(** [scale canonical ~intensity] with an optional seed override. *)

val of_env : unit -> scenario option
(** Reads [GRAYBOX_FAULTS]: unset or ["none"] gives [None];
    ["canonical"]/["heavy"] the presets; a float is an intensity. *)

(** {1 Runtime plane (held by the kernel)} *)

type t

val validate : scenario -> unit
(** Raise [Invalid_argument] naming the offending field when a scenario is
    malformed: probabilities and [di_evict_frac] outside [0, 1], negative
    magnitudes or horizons, [sc_timer_factor] below 1, or a period below
    1 ns (periods are used as moduli against the clock).  Called by
    {!create}, so a bad scenario is rejected at install time rather than
    surfacing as wrong arithmetic mid-run. *)

val create : scenario -> t
(** Validates (see {!validate}), then builds the runtime plane. *)

val scenario : t -> scenario

val stop : t -> unit
(** Ask the background daemons to exit at their next wake-up. *)

val stopped : t -> bool

type stats = {
  f_errors : int;  (** transient syscall errors injected *)
  f_spikes : int;  (** random latency spikes served *)
  f_burst_hits : int;  (** syscalls that landed in a burst window *)
  f_evictions : int;  (** file pages evicted by the disturber *)
  f_pressure_waves : int;
}

val stats : t -> stats

(** {1 Hooks (for {!Kernel} — not for ICLs)} *)

val inject_error : t -> target -> bool
(** Should this call fail with [Retryable]?  Draws only when the target is
    eligible and the probability is positive. *)

val extra_latency : t -> now:int -> int
(** Burst + spike latency to add to a syscall completing at [now]. *)

val timer_resolution : t -> base:int -> int
(** Effective gray-box timer resolution under coarsening. *)

val timer_jitter : t -> int
(** Per-read clock jitter in [\[0, sc_timer_jitter_ns\]]; [0] without a draw
    when jitter is disabled. *)

val note_evictions : t -> int -> unit
val note_pressure_wave : t -> unit
val rng : t -> Gray_util.Rng.t
(** The plane's private RNG (the disturber daemon samples victims from
    it). *)
