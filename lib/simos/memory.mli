(** Physical-memory organisation: how file pages and anonymous pages share
    the machine's frames.

    Two arrangements cover the paper's three platforms:
    - {e unified}: one pool holds both kinds (Linux 2.2's "shared virtual
      memory/file cache", Section 4.3.3), so file-cache pages shrink under
      anonymous-memory pressure and vice versa;
    - {e split}: a fixed-size file cache plus a separate anonymous pool
      (NetBSD 1.5's fixed 64 MB cache; Solaris 7 modelled likewise with a
      large sticky file cache). *)

type layout =
  | Unified of Replacement.factory
  | Unified_balanced of {
      policy : Replacement.factory;
      file_floor_pages : int;
    }
      (** Linux 2.2-style balance: anonymous demand shrinks the file cache
          (never below the floor), but streaming file pages cannot push
          out resident anonymous memory — the kernel's reclaim preferred
          page-cache pages over swapping. *)
  | Split of {
      file_pages : int;
      file_policy : Replacement.factory;
      anon_policy : Replacement.factory;
    }

type t

val create : usable_pages:int -> layout -> t
(** [usable_pages] excludes the kernel's own reservation.  For [Split] the
    anonymous pool gets [usable_pages - file_pages]. *)

val access : t -> Page.key -> dirty:bool -> [ `Hit | `Filled of Pool.evicted list ]
(** Route the page to its pool (by key kind). *)

val access_run :
  t ->
  n:int ->
  key:(int -> Page.key) ->
  dirty:bool ->
  on_hit:(int -> Page.key -> unit) ->
  on_miss:(int -> Page.key -> unit) ->
  on_evict:(Page.key -> dirty:bool -> unit) ->
  on_page_end:(int -> evicted:int -> unit) ->
  unit
(** Batched access of [key 0 .. key (n-1)], which must all be the same
    kind (one file extent or one anonymous range — the pool is routed
    once).  Per page, in per-page-path order: [on_hit] {e or} [on_miss]
    (before the insert), then the page's evictions — pool victims first,
    then any balanced-layout rebalance overflow — through [on_evict],
    then [on_page_end] with the eviction count.  Observably equivalent to
    [n] {!access} calls, without the per-page list/option allocation. *)

val contains : t -> Page.key -> bool
val invalidate : t -> Page.key -> unit
val invalidate_if : t -> (Page.key -> bool) -> int
val drop_file_cache : t -> unit

val invalidate_anon_range : t -> pid:int -> lo:int -> hi:int -> int
(** Drop the anonymous pages [vpn ∈ [lo, hi)] of process [pid] by direct
    per-key probes — O(range) instead of {!invalidate_if}'s O(resident)
    predicate scan.  Returns how many were resident.  This is the
    region-free path ([vfree]/[vrelease]/process exit), which the crash
    explorer's MAC workloads hit once per allocate/free cycle. *)

val reset : t -> unit
(** Drop {e all} resident pages in O(1) of the resident count (see
    {!Pool.clear}); the balanced layout's file capacity returns to the
    full usable size.  The whole-machine restart path. *)

(** {1 Drift-plane mutations (experiment control, not for ICLs)} *)

val resize_file_into :
  t -> capacity_pages:int -> on_evict:(Page.key -> dirty:bool -> unit) -> unit
(** Resize the file cache under a live machine (the drift plane's mid-run
    cache change).  The unified layout resizes the single shared pool
    (overflow victims may be of either kind); the balanced layout moves
    its floating rebalance target by the same delta so the next anonymous
    miss does not undo the change.  Victims stream through [on_evict] for
    writeback charging. *)

val swap_file_policy : t -> Replacement.factory -> unit
(** Swap the file pool's replacement policy in place (see
    {!Pool.set_policy}); affects both kinds in the unified layout.  No
    page is evicted; recency state restarts from sorted key order. *)

val file_pool : t -> Pool.t
val anon_pool : t -> Pool.t
(** Equal to [file_pool] in the unified layout. *)

val unified : t -> bool

val file_capacity : t -> int
(** Frames the file cache can grow to (the whole pool when unified). *)

val anon_capacity : t -> int
val resident_file : t -> int
val resident_anon : t -> int
