(** Capacity-enforced page pool over a replacement policy.

    The pool owns the resident-set bookkeeping (capacity, hit and eviction
    counters) and delegates ordering decisions — and the per-page dirty
    bits — to a {!Replacement} policy instance.  The kernel charges I/O
    costs for the dirty pages an access pushes out.

    Two API styles cover the same semantics: the list-building {!access}
    (one allocation-friendly result per page, convenient for tests and
    cold paths) and the callback-based fast path ({!try_hit}/{!fill}/
    {!access_run}) that the kernel's page loops use.  The differential
    suite [test_pool_equiv] holds them observably identical. *)

type t

type evicted = { key : Page.key; dirty : bool }

val create : name:string -> capacity_pages:int -> policy:Replacement.factory -> t
val name : t -> string
val capacity : t -> int

val policy_name : t -> string
(** Name of the replacement policy currently running the pool. *)

val set_policy : t -> Replacement.factory -> unit
(** Swap the replacement policy under a live pool (the drift plane's
    mid-run policy change).  Resident pages carry over with their dirty
    bits, re-inserted into the fresh policy instance in sorted key order —
    a fixed order, so swapped runs stay deterministic.  The old policy's
    recency information is lost by design; no page is evicted. *)

val resident : t -> int
val contains : t -> Page.key -> bool

val access : t -> Page.key -> dirty:bool -> [ `Hit | `Filled of evicted list ]
(** Look up the page; on a miss, insert it, evicting as needed.  [dirty]
    marks the page dirty (writes).  The returned list holds the evicted
    pages (at most one per access in steady state). *)

(** {1 Batched fast path}

    The run API classifies each page of a contiguous run as hit or miss in
    a single policy lookup and streams evictions through callbacks, so the
    hot loop performs no list or option allocation.  Per-page observable
    behaviour (hit/miss counters, eviction order, dirty bits) is identical
    to calling {!access} page by page. *)

val try_hit : t -> Page.key -> dirty:bool -> bool
(** One-lookup access: on a hit, count it, touch the policy, OR in the
    dirty bit, return [true].  On a miss, count the miss and return
    [false] {e without} inserting — the caller must follow up with
    {!fill} (this is the miss half of {!access}). *)

val fill : t -> Page.key -> dirty:bool -> on_evict:(Page.key -> dirty:bool -> unit) -> unit
(** Insert a key that {!try_hit} just missed, evicting while the pool is
    at capacity; victims stream through [on_evict] in eviction order. *)

val access_run :
  t ->
  n:int ->
  key:(int -> Page.key) ->
  dirty:bool ->
  on_hit:(int -> Page.key -> unit) ->
  on_miss:(int -> Page.key -> unit) ->
  on_evict:(Page.key -> dirty:bool -> unit) ->
  on_page_end:(int -> evicted:int -> unit) ->
  unit
(** Access pages [key 0 .. key (n-1)] in order.  Per page: exactly one of
    [on_hit]/[on_miss] fires first ([on_miss] before the insert and its
    evictions, matching the per-page path), then the page's evictions
    stream through [on_evict], then [on_page_end] reports how many there
    were.  Equivalent to [n] calls of {!access}. *)

val evict_one : t -> evicted option
(** Force one eviction (page-daemon style), if any page is resident. *)

val resize : t -> capacity_pages:int -> evicted list
(** Change the capacity; shrinking below the resident count evicts the
    overflow and returns it (for writeback charging). *)

val resize_into :
  t -> capacity_pages:int -> on_evict:(Page.key -> dirty:bool -> unit) -> unit
(** {!resize} with victims streamed through a callback instead of a
    list (the balanced-memory rebalance path runs per anonymous miss). *)

val invalidate : t -> Page.key -> unit
(** Drop a page without writeback (file deleted, process exited). *)

val take : t -> Page.key -> bool
(** [invalidate] that reports whether the key was resident, in the same
    single probe — the building block of range invalidation, where a
    [contains]-then-[invalidate] pair would probe twice per candidate. *)

val invalidate_if : t -> (Page.key -> bool) -> int
(** Drop all pages matching the predicate; returns how many were dropped. *)

val drop_all : t -> unit
(** Flush the pool (the experiments' "flush the file cache" step). *)

val clear : t -> unit
(** {!drop_all} in O(1) of the resident count: rebuild a fresh (empty)
    instance of the current policy instead of removing pages one by one.
    Counters are preserved, like {!drop_all}.  The whole-machine restart
    path uses this so a crash boundary does not pay an O(resident)
    scan. *)

val is_dirty : t -> Page.key -> bool

val clean : t -> Page.key -> unit
(** Drop a resident page's dirty bit in place (fsync wrote it back); the
    page stays resident. *)

val iter : t -> (Page.key -> unit) -> unit

(** {1 Counters} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val reset_counters : t -> unit
