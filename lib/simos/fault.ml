type target = Open | Read | Write | Stat | Create | Unlink | Rename | Mkdir

type burst = { bu_period_ns : int; bu_duration_ns : int; bu_extra_ns : int }

type disturbance = {
  di_period_ns : int;
  di_evict_frac : float;
  di_horizon_ns : int;
}

type pressure = {
  pr_pages : int;
  pr_hold_ns : int;
  pr_gap_ns : int;
  pr_horizon_ns : int;
}

type scenario = {
  sc_name : string;
  sc_seed : int;
  sc_error_prob : float;
  sc_error_targets : target list;
  sc_burst : burst option;
  sc_spike_prob : float;
  sc_spike_ns : int;
  sc_timer_factor : int;
  sc_timer_jitter_ns : int;
  sc_disturb : disturbance option;
  sc_pressure : pressure option;
}

let quiet =
  {
    sc_name = "quiet";
    sc_seed = 0;
    sc_error_prob = 0.0;
    sc_error_targets = [];
    sc_burst = None;
    sc_spike_prob = 0.0;
    sc_spike_ns = 0;
    sc_timer_factor = 1;
    sc_timer_jitter_ns = 0;
    sc_disturb = None;
    sc_pressure = None;
  }

let sec = 1_000_000_000

let canonical =
  {
    sc_name = "canonical";
    sc_seed = 0xFA17;
    sc_error_prob = 0.02;
    sc_error_targets = [ Open; Read; Write; Stat ];
    sc_burst =
      Some { bu_period_ns = 250_000_000; bu_duration_ns = 25_000_000; bu_extra_ns = 2_000_000 };
    sc_spike_prob = 0.01;
    sc_spike_ns = 5_000_000;
    sc_timer_factor = 4;
    sc_timer_jitter_ns = 200;
    sc_disturb =
      Some { di_period_ns = 100_000_000; di_evict_frac = 0.02; di_horizon_ns = 30 * sec };
    sc_pressure =
      Some
        {
          pr_pages = 2048;
          pr_hold_ns = 200_000_000;
          pr_gap_ns = 400_000_000;
          pr_horizon_ns = 30 * sec;
        };
  }

(* Linear scaling keeps the degradation curves of bench/faults.ml smooth:
   probabilities, magnitudes and daemon appetites all grow with intensity,
   while periods/horizons stay fixed so time structure is comparable. *)
let scale sc ~intensity =
  if intensity < 0.0 then invalid_arg "Fault.scale: negative intensity";
  let i = intensity in
  let f x = x *. i in
  let n x = int_of_float (float_of_int x *. i) in
  {
    sc with
    sc_name = Printf.sprintf "%s@%.2f" sc.sc_name i;
    sc_error_prob = Float.min 1.0 (f sc.sc_error_prob);
    sc_burst =
      Option.map (fun b -> { b with bu_extra_ns = n b.bu_extra_ns }) sc.sc_burst;
    sc_spike_prob = Float.min 1.0 (f sc.sc_spike_prob);
    sc_spike_ns = n sc.sc_spike_ns;
    sc_timer_factor = max 1 (1 + n (sc.sc_timer_factor - 1));
    sc_timer_jitter_ns = n sc.sc_timer_jitter_ns;
    sc_disturb =
      Option.map
        (fun d -> { d with di_evict_frac = Float.min 1.0 (f d.di_evict_frac) })
        sc.sc_disturb;
    sc_pressure = Option.map (fun p -> { p with pr_pages = n p.pr_pages }) sc.sc_pressure;
  }

let heavy = { (scale canonical ~intensity:2.0) with sc_name = "heavy" }

let of_intensity ?seed ~intensity () =
  let sc = scale canonical ~intensity in
  match seed with None -> sc | Some s -> { sc with sc_seed = s }

let of_env () =
  Gray_util.Env.parse ~var:"GRAYBOX_FAULTS"
    ~expected:"none, canonical, heavy or a non-negative intensity"
    ~on_invalid:`Raise ~default:None (fun token ->
      match token with
      | "none" -> Gray_util.Env.Value None
      | "canonical" -> Value (Some canonical)
      | "heavy" -> Value (Some heavy)
      | s -> (
        match float_of_string_opt s with
        | Some i when i >= 0.0 -> Value (Some (of_intensity ~intensity:i ()))
        | _ -> Invalid))

type mutable_stats = {
  mutable m_errors : int;
  mutable m_spikes : int;
  mutable m_burst_hits : int;
  mutable m_evictions : int;
  mutable m_pressure_waves : int;
}

type t = {
  f_scenario : scenario;
  f_rng : Gray_util.Rng.t;
  mutable f_stopped : bool;
  f_stats : mutable_stats;
}

(* Reject malformed scenarios at install time, naming the offending
   field.  A negative probability or a zero period (used as a modulus)
   would otherwise surface as silently wrong arithmetic deep inside a
   run, or a Division_by_zero with no hint of which field caused it. *)
let validate sc =
  let bad field fmt =
    Printf.ksprintf
      (fun msg -> invalid_arg (Printf.sprintf "Fault: %s %s" field msg))
      fmt
  in
  let prob field p =
    if not (p >= 0.0 && p <= 1.0) then bad field "must be in [0, 1] (got %g)" p
  in
  let non_neg field n = if n < 0 then bad field "must be >= 0 (got %d)" n in
  let period field n = if n < 1 then bad field "must be >= 1 ns (got %d)" n in
  prob "sc_error_prob" sc.sc_error_prob;
  prob "sc_spike_prob" sc.sc_spike_prob;
  non_neg "sc_spike_ns" sc.sc_spike_ns;
  if sc.sc_timer_factor < 1 then
    bad "sc_timer_factor" "must be >= 1 (got %d)" sc.sc_timer_factor;
  non_neg "sc_timer_jitter_ns" sc.sc_timer_jitter_ns;
  Option.iter
    (fun b ->
      period "sc_burst.bu_period_ns" b.bu_period_ns;
      non_neg "sc_burst.bu_duration_ns" b.bu_duration_ns;
      non_neg "sc_burst.bu_extra_ns" b.bu_extra_ns)
    sc.sc_burst;
  Option.iter
    (fun d ->
      period "sc_disturb.di_period_ns" d.di_period_ns;
      prob "sc_disturb.di_evict_frac" d.di_evict_frac;
      non_neg "sc_disturb.di_horizon_ns" d.di_horizon_ns)
    sc.sc_disturb;
  Option.iter
    (fun p ->
      non_neg "sc_pressure.pr_pages" p.pr_pages;
      non_neg "sc_pressure.pr_hold_ns" p.pr_hold_ns;
      non_neg "sc_pressure.pr_gap_ns" p.pr_gap_ns;
      non_neg "sc_pressure.pr_horizon_ns" p.pr_horizon_ns)
    sc.sc_pressure

let create sc =
  validate sc;
  {
    f_scenario = sc;
    f_rng = Gray_util.Rng.create ~seed:sc.sc_seed;
    f_stopped = false;
    f_stats =
      { m_errors = 0; m_spikes = 0; m_burst_hits = 0; m_evictions = 0; m_pressure_waves = 0 };
  }

let scenario t = t.f_scenario
let stop t = t.f_stopped <- true
let stopped t = t.f_stopped
let rng t = t.f_rng

type stats = {
  f_errors : int;
  f_spikes : int;
  f_burst_hits : int;
  f_evictions : int;
  f_pressure_waves : int;
}

let stats t =
  {
    f_errors = t.f_stats.m_errors;
    f_spikes = t.f_stats.m_spikes;
    f_burst_hits = t.f_stats.m_burst_hits;
    f_evictions = t.f_stats.m_evictions;
    f_pressure_waves = t.f_stats.m_pressure_waves;
  }

let inject_error t target =
  let sc = t.f_scenario in
  if sc.sc_error_prob <= 0.0 || not (List.mem target sc.sc_error_targets) then false
  else begin
    let hit = Gray_util.Rng.float t.f_rng 1.0 < sc.sc_error_prob in
    if hit then t.f_stats.m_errors <- t.f_stats.m_errors + 1;
    hit
  end

let extra_latency t ~now =
  let sc = t.f_scenario in
  let burst =
    match sc.sc_burst with
    | Some b when b.bu_extra_ns > 0 && now mod b.bu_period_ns < b.bu_duration_ns ->
      t.f_stats.m_burst_hits <- t.f_stats.m_burst_hits + 1;
      b.bu_extra_ns
    | _ -> 0
  in
  let spike =
    if sc.sc_spike_prob > 0.0 && sc.sc_spike_ns > 0
       && Gray_util.Rng.float t.f_rng 1.0 < sc.sc_spike_prob
    then begin
      t.f_stats.m_spikes <- t.f_stats.m_spikes + 1;
      sc.sc_spike_ns
    end
    else 0
  in
  burst + spike

let timer_resolution t ~base = base * max 1 t.f_scenario.sc_timer_factor

let timer_jitter t =
  let j = t.f_scenario.sc_timer_jitter_ns in
  if j <= 0 then 0 else Gray_util.Rng.int t.f_rng (j + 1)

let note_evictions t n = t.f_stats.m_evictions <- t.f_stats.m_evictions + n
let note_pressure_wave t = t.f_stats.m_pressure_waves <- t.f_stats.m_pressure_waves + 1
