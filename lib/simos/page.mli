(** Identities of cacheable pages.

    Physical memory frames hold either file pages (identified by inode
    number and page index within the file) or anonymous process pages
    (identified by pid and virtual page number). *)

type key =
  | File of { ino : int; idx : int }
  | Anon of { pid : int; vpn : int }

val equal : key -> key -> bool
val hash : key -> int
val pp : Format.formatter -> key -> unit
val to_string : key -> string

val is_file : key -> bool
val is_anon : key -> bool

(** Open-addressing hash table specialised to page keys — the simulator's
    hottest data structure.  A probe walks a flat array of stored hashes
    and dereferences the boxed key only on a hash match, so a lookup in a
    larger-than-cache resident set costs one or two cache misses where a
    bucket-chained [Hashtbl] pays one per pointer chase.  The supported
    subset of the [Hashtbl.S] interface keeps [Hashtbl] calling
    conventions ([replace] upserts, [find] raises [Not_found], iteration
    order arbitrary). *)
module Tbl : sig
  type 'a t

  val create : int -> 'a t
  val length : 'a t -> int
  val find : 'a t -> key -> 'a
  val mem : 'a t -> key -> bool
  val replace : 'a t -> key -> 'a -> unit

  val add : 'a t -> key -> 'a -> unit
  (** [replace] for a key the caller {e knows} is absent (the insert after
      a miss): one probe instead of two.  Inserting a present key this way
      duplicates it — callers own that invariant. *)

  val remove : 'a t -> key -> unit
  val iter : (key -> 'a -> unit) -> 'a t -> unit
  val copy : 'a t -> 'a t
  val reset : 'a t -> unit
end
