type t = { free_at : int array; mutable busy_ns : int }

let create ~slots =
  if slots <= 0 then invalid_arg "Resource.create: slots must be positive";
  { free_at = Array.make slots 0; busy_ns = 0 }

let slots t = Array.length t.free_at

let acquire t ~now ~duration =
  if duration < 0 then invalid_arg "Resource.acquire: negative duration";
  let best = ref 0 in
  Array.iteri (fun i v -> if v < t.free_at.(!best) then best := i) t.free_at;
  let start = max now t.free_at.(!best) in
  let completion = start + duration in
  t.free_at.(!best) <- completion;
  t.busy_ns <- t.busy_ns + duration;
  completion - now

let busy_ns t = t.busy_ns

(* Crash–restart: in-flight work dies with the machine and the fresh
   engine's clock starts at 0, so every slot becomes free immediately. *)
let reboot t = Array.fill t.free_at 0 (Array.length t.free_at) 0
