type t = {
  name : string;
  memory_mib : int;
  kernel_reserved_mib : int;
  cpus : int;
  page_size : int;
  file_cache : [ `Unified | `Fixed_mib of int ];
  file_policy : Replacement.factory;
  anon_policy : Replacement.factory;
  disk : Disk.geometry;
  syscall_overhead_ns : int;
  memcopy_byte_ns : float;
  mem_touch_ns : int;
  page_alloc_zero_ns : int;
  timer_resolution_ns : int;
  noise_sigma : float;
  faults : Fault.scenario option;
}

(* Shared 2001-era hardware numbers: dual PIII, ~150 MB/s kernel-to-user
   copy, microsecond-class syscalls, rdtsc timing. *)
let base name =
  {
    name;
    memory_mib = 896;
    kernel_reserved_mib = 66;
    cpus = 2;
    page_size = 4096;
    file_cache = `Unified;
    file_policy = Replacement.clock;
    anon_policy = Replacement.clock;
    disk = Disk.ibm_9lzx;
    syscall_overhead_ns = 2_000;
    memcopy_byte_ns = 6.7;
    (* ~150 MB/s kernel-to-user copy *)
    mem_touch_ns = 150;
    page_alloc_zero_ns = 9_000;
    timer_resolution_ns = 100;
    noise_sigma = 0.05;
    faults = None;
  }

let linux_2_2 = { (base "linux-2.2") with file_cache = `Unified }

let netbsd_1_5 =
  {
    (base "netbsd-1.5") with
    file_cache = `Fixed_mib 64;
    file_policy = Replacement.lru;
  }

let solaris_7 =
  {
    (base "solaris-7") with
    file_cache = `Fixed_mib 700;
    file_policy = Replacement.mru_sticky;
  }

let all = [ linux_2_2; netbsd_1_5; solaris_7 ]

let usable_pages t = (t.memory_mib - t.kernel_reserved_mib) * 1024 * 1024 / t.page_size
let usable_bytes t = usable_pages t * t.page_size

let memory_layout t =
  match t.file_cache with
  | `Unified ->
    (* Linux 2.2 balance: the cache yields to process memory, not the
       other way around; reserve ~4% of memory as the cache floor *)
    Memory.Unified_balanced
      {
        policy = t.file_policy;
        file_floor_pages = max 1 (usable_pages t * 4 / 100);
      }
  | `Fixed_mib mib ->
    Memory.Split
      {
        file_pages = mib * 1024 * 1024 / t.page_size;
        file_policy = t.file_policy;
        anon_policy = t.anon_policy;
      }

let with_noise t ~sigma = { t with noise_sigma = sigma }
let with_memory_mib t mib = { t with memory_mib = mib }
let with_file_policy t policy = { t with file_policy = policy }
let with_faults t scenario = { t with faults = scenario }
let with_timer_resolution t ~ns = { t with timer_resolution_ns = max 1 ns }
let hostile t = { t with faults = Some Fault.canonical }

let by_name n =
  match List.find_opt (fun p -> p.name = n) all with
  | Some p -> p
  | None -> invalid_arg ("Platform.by_name: unknown platform " ^ n)
