type layout =
  | Unified of Replacement.factory
  | Unified_balanced of {
      policy : Replacement.factory;
      file_floor_pages : int;
    }
  | Split of {
      file_pages : int;
      file_policy : Replacement.factory;
      anon_policy : Replacement.factory;
    }

type t = {
  file : Pool.t;
  anon : Pool.t;
  unified : bool;
  (* balanced mode: file capacity floats as usable - resident_anon;
     mutable because a drift-plane resize moves the usable total itself *)
  mutable balanced_usable : int option;
  mutable n_file : int;
  mutable n_anon : int;
}

let create ~usable_pages layout =
  if usable_pages <= 0 then invalid_arg "Memory.create: no usable pages";
  match layout with
  | Unified policy ->
    let pool = Pool.create ~name:"unified" ~capacity_pages:usable_pages ~policy in
    { file = pool; anon = pool; unified = true; balanced_usable = None;
      n_file = 0; n_anon = 0 }
  | Unified_balanced { policy; file_floor_pages } ->
    if file_floor_pages <= 0 || file_floor_pages >= usable_pages then
      invalid_arg "Memory.create: bad file-cache floor";
    let file = Pool.create ~name:"file" ~capacity_pages:usable_pages ~policy in
    let anon =
      Pool.create ~name:"anon" ~capacity_pages:(usable_pages - file_floor_pages)
        ~policy
    in
    { file; anon; unified = false; balanced_usable = Some usable_pages;
      n_file = 0; n_anon = 0 }
  | Split { file_pages; file_policy; anon_policy } ->
    if file_pages <= 0 || file_pages >= usable_pages then
      invalid_arg "Memory.create: bad file-cache size";
    let file = Pool.create ~name:"file" ~capacity_pages:file_pages ~policy:file_policy in
    let anon =
      Pool.create ~name:"anon" ~capacity_pages:(usable_pages - file_pages)
        ~policy:anon_policy
    in
    { file; anon; unified = false; balanced_usable = None; n_file = 0; n_anon = 0 }

let pool_for t key = if Page.is_file key then t.file else t.anon

let bump t key delta =
  if Page.is_file key then t.n_file <- t.n_file + delta
  else t.n_anon <- t.n_anon + delta

(* In the balanced layout the file cache holds whatever anonymous memory
   does not use; growing anon evicts file overflow.  [on_evict] receives
   the overflow victims and must bump the resident counts itself. *)
let rebalance_into t ~on_evict =
  match t.balanced_usable with
  | None -> ()
  | Some usable ->
    let target = max 1 (usable - t.n_anon) in
    if target <> Pool.capacity t.file then
      Pool.resize_into t.file ~capacity_pages:target ~on_evict

let rebalance t =
  rebalance_into t ~on_evict:(fun key ~dirty:_ -> bump t key (-1))

let access t key ~dirty =
  let pool = pool_for t key in
  if Pool.try_hit pool key ~dirty then `Hit
  else begin
    let out = ref [] in
    let on_evict k ~dirty =
      bump t k (-1);
      out := { Pool.key = k; dirty } :: !out
    in
    Pool.fill pool key ~dirty ~on_evict;
    bump t key 1;
    if Page.is_anon key then rebalance_into t ~on_evict;
    `Filled (List.rev !out)
  end

let access_run t ~n ~key ~dirty ~on_hit ~on_miss ~on_evict ~on_page_end =
  if n > 0 then begin
    (* One pool-routing decision for the whole run: kernel runs are
       homogeneous (a file extent or an anonymous page range). *)
    let k0 = key 0 in
    let anon = Page.is_anon k0 in
    let pool = pool_for t k0 in
    let nev = ref 0 in
    let counting k ~dirty =
      bump t k (-1);
      incr nev;
      on_evict k ~dirty
    in
    for i = 0 to n - 1 do
      let k = key i in
      if Pool.try_hit pool k ~dirty then begin
        on_hit i k;
        on_page_end i ~evicted:0
      end
      else begin
        on_miss i k;
        nev := 0;
        Pool.fill pool k ~dirty ~on_evict:counting;
        bump t k 1;
        if anon then rebalance_into t ~on_evict:counting;
        on_page_end i ~evicted:!nev
      end
    done
  end

let contains t key = Pool.contains (pool_for t key) key

let invalidate t key =
  if Pool.take (pool_for t key) key then begin
    bump t key (-1);
    (* freed anonymous frames flow back to the file cache silently *)
    if Page.is_anon key then rebalance t
  end

let invalidate_if t pred =
  let dropped = ref 0 in
  let drop_matching pool kind_pred =
    dropped :=
      !dropped
      + Pool.invalidate_if pool (fun key ->
            if kind_pred key && pred key then begin
              bump t key (-1);
              true
            end
            else false)
  in
  if t.unified then drop_matching t.file (fun _ -> true)
  else begin
    drop_matching t.file Page.is_file;
    drop_matching t.anon Page.is_anon
  end;
  rebalance t;
  !dropped

let drop_file_cache t = ignore (invalidate_if t Page.is_file)

(* Targeted invalidation of one process's virtual-page range (vfree /
   vrelease / exit): probe each candidate key directly instead of scanning
   every resident page with a predicate — O(range), not O(resident), and
   no doomed-list allocation.  The single rebalance at the end matches
   [invalidate_if]'s; intermediate states differ only in when the file
   cache grows back, which no access can observe (nothing runs between the
   removals). *)
let invalidate_anon_range t ~pid ~lo ~hi =
  let pool = t.anon in
  let dropped = ref 0 in
  for vpn = lo to hi - 1 do
    if Pool.take pool (Page.Anon { pid; vpn }) then begin
      t.n_anon <- t.n_anon - 1;
      incr dropped
    end
  done;
  if !dropped > 0 then rebalance t;
  !dropped

(* Forget all resident pages at once (whole-machine restart): rebuild the
   pools' policy instances instead of removing pages one by one.  The
   balanced layout's file capacity snaps back to the full usable size via
   the ordinary rebalance (no anonymous residents left). *)
let reset t =
  Pool.clear t.file;
  if not t.unified then Pool.clear t.anon;
  t.n_file <- 0;
  t.n_anon <- 0;
  rebalance t

(* ---- drift-plane mutations (mid-run environment change) ---- *)

(* Resize the file cache under a live machine.  In the unified layout the
   single pool is resized (file and anonymous pages share it, so both
   kinds may be among the overflow victims); in the balanced layout the
   floating rebalance target moves by the same delta, so the change is
   not silently undone at the next anonymous miss.  Victims stream
   through [on_evict] for writeback charging, exactly like a capacity
   miss. *)
let resize_file_into t ~capacity_pages ~on_evict =
  if capacity_pages <= 0 then
    invalid_arg "Memory.resize_file_into: capacity must be positive";
  (match t.balanced_usable with
  | Some usable ->
    let delta = capacity_pages - Pool.capacity t.file in
    t.balanced_usable <- Some (max 1 (usable + delta))
  | None -> ());
  Pool.resize_into t.file ~capacity_pages
    ~on_evict:(fun key ~dirty ->
      bump t key (-1);
      on_evict key ~dirty)

let swap_file_policy t factory = Pool.set_policy t.file factory

let file_pool t = t.file
let anon_pool t = t.anon
let unified t = t.unified
let file_capacity t = Pool.capacity t.file
let anon_capacity t = Pool.capacity t.anon
let resident_file t = t.n_file
let resident_anon t = t.n_anon
