(** FCFS multi-slot resource (e.g. the CPUs).

    Requests dispatched while all slots are busy are served in dispatch
    order by whichever slot frees first — sufficient for modelling compute
    contention among a handful of simulated processes. *)

type t

val create : slots:int -> t
val slots : t -> int

val acquire : t -> now:int -> duration:int -> int
(** [acquire t ~now ~duration] reserves the earliest-free slot and returns
    the delay until completion as seen from [now] (queueing included). *)

val busy_ns : t -> int
(** Total reserved service time so far. *)

val reboot : t -> unit
(** Crash–restart: free every slot immediately (in-flight work died with
    the machine; the fresh engine's clock restarts at 0). *)
