type key =
  | File of { ino : int; idx : int }
  | Anon of { pid : int; vpn : int }

let equal (a : key) (b : key) =
  match (a, b) with
  | File a, File b -> a.ino = b.ino && a.idx = b.idx
  | Anon a, Anon b -> a.pid = b.pid && a.vpn = b.vpn
  | File _, Anon _ | Anon _, File _ -> false

(* Page lookups dominate the simulator's hot path, so the hash must not
   allocate (the generic [Hashtbl.hash] boxes a scratch tuple per call).
   Fibonacci-style integer mixing keeps neighbouring (ino, idx) pairs well
   spread; the kind constant separates file from anonymous keys. *)
let mix a b kind =
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) lxor kind in
  let h = h lxor (h lsr 23) in
  (h * 0xC2B2AE3D) land max_int

let hash = function
  | File { ino; idx } -> mix ino idx 0
  | Anon { pid; vpn } -> mix pid vpn 0x5bd1e995

let pp ppf = function
  | File { ino; idx } -> Format.fprintf ppf "file(ino=%d,page=%d)" ino idx
  | Anon { pid; vpn } -> Format.fprintf ppf "anon(pid=%d,vpn=%d)" pid vpn

let to_string k = Format.asprintf "%a" pp k
let is_file = function File _ -> true | Anon _ -> false
let is_anon = function Anon _ -> true | File _ -> false

(* Open-addressing hash table specialised to page keys.

   A resident set of a few hundred thousand pages does not fit in cache,
   so every page access pays DRAM latency per dependent pointer chase; the
   bucket-chained stdlib [Hashtbl] costs one chase for the bucket, one per
   cons cell, and one per key compare.  Here a probe touches a flat [int]
   array of stored hashes — linear probing stays within a cache line for
   the common cluster — and dereferences the boxed key only when the
   stored hash already matches, so a lookup is one or two cache misses
   total.  Deletions leave tombstones; a rehash (on growth, or when
   tombstones outnumber live entries) drops them.

   Only the operations the simulator uses are provided.  Iteration order
   is arbitrary, as with [Hashtbl]; no caller depends on it. *)
module Tbl = struct
  type 'a t = {
    mutable hs : int array;  (* stored hash, or empty / tombstone *)
    mutable ks : key array;
    mutable vs : Obj.t array;
    mutable live : int;      (* entries holding a binding *)
    mutable fill : int;      (* live + tombstones *)
  }

  let empty_h = -1
  let tomb_h = -2
  let dummy_key = File { ino = min_int; idx = min_int }
  let dummy_val = Obj.repr ()

  let norm_capacity n =
    let rec up c = if c >= n then c else up (c * 2) in
    up 16

  let create n =
    let cap = norm_capacity (max 16 (n * 2)) in
    {
      hs = Array.make cap empty_h;
      ks = Array.make cap dummy_key;
      vs = Array.make cap dummy_val;
      live = 0;
      fill = 0;
    }

  let length t = t.live

  (* Slot of [key] (stored hash [h]) if present, or the negated insertion
     point minus 1: the first tombstone on the probe path if any, else the
     empty slot that terminated it. *)
  let probe t key h =
    let mask = Array.length t.hs - 1 in
    let rec go i first_tomb =
      let sh = Array.unsafe_get t.hs i in
      if sh = empty_h then
        -(if first_tomb >= 0 then first_tomb else i) - 1
      else if sh = h && equal (Array.unsafe_get t.ks i) key then i
      else
        go
          ((i + 1) land mask)
          (if first_tomb < 0 && sh = tomb_h then i else first_tomb)
    in
    go (h land mask) (-1)

  let rec rehash t cap =
    let ohs = t.hs and oks = t.ks and ovs = t.vs in
    t.hs <- Array.make cap empty_h;
    t.ks <- Array.make cap dummy_key;
    t.vs <- Array.make cap dummy_val;
    t.live <- 0;
    t.fill <- 0;
    Array.iteri
      (fun i h -> if h >= 0 then insert_fresh t h oks.(i) ovs.(i))
      ohs

  (* Insert a binding known to be absent. *)
  and insert_fresh t h key v =
    let cap = Array.length t.hs in
    if 3 * t.fill >= 2 * cap then begin
      (* grow only when live entries need the room; otherwise the rehash
         just clears tombstones at the same size *)
      rehash t (if 3 * t.live >= cap then cap * 2 else cap);
      insert_fresh t h key v
    end
    else begin
      let i = probe t key h in
      let i = if i < 0 then -i - 1 else i in
      if t.hs.(i) = empty_h then t.fill <- t.fill + 1;
      t.hs.(i) <- h;
      t.ks.(i) <- key;
      t.vs.(i) <- v;
      t.live <- t.live + 1
    end

  let find (t : 'a t) key : 'a =
    let i = probe t key (hash key) in
    if i < 0 then raise Not_found else Obj.obj (Array.unsafe_get t.vs i)

  let mem t key = probe t key (hash key) >= 0

  let replace (t : 'a t) key (v : 'a) =
    let h = hash key in
    let i = probe t key h in
    if i >= 0 then t.vs.(i) <- Obj.repr v else insert_fresh t h key (Obj.repr v)

  (* Insert a binding the caller knows is absent (e.g. right after a miss):
     one probe, where [replace] would probe twice. *)
  let add (t : 'a t) key (v : 'a) = insert_fresh t (hash key) key (Obj.repr v)

  let remove t key =
    let i = probe t key (hash key) in
    if i >= 0 then begin
      t.hs.(i) <- tomb_h;
      t.ks.(i) <- dummy_key;
      t.vs.(i) <- dummy_val;
      t.live <- t.live - 1;
      (* Tombstones degrade probes only as the table fills up, and every
         same-size rehash costs O(capacity): compact when the tombstones
         alone occupy a third of the slots, so a bulk removal (a region
         free, a machine restart) triggers at most one compaction instead
         of one per two-thirds shrink of the live count. *)
      let cap = Array.length t.hs in
      if 3 * (t.fill - t.live) >= cap && cap > 16 then rehash t cap
    end

  let iter f (t : 'a t) =
    Array.iteri (fun i h -> if h >= 0 then f t.ks.(i) (Obj.obj t.vs.(i))) t.hs

  let copy t =
    {
      hs = Array.copy t.hs;
      ks = Array.copy t.ks;
      vs = Array.copy t.vs;
      live = t.live;
      fill = t.fill;
    }

  let reset t =
    let cap = 16 in
    t.hs <- Array.make cap empty_h;
    t.ks <- Array.make cap dummy_key;
    t.vs <- Array.make cap dummy_val;
    t.live <- 0;
    t.fill <- 0
end
