module type POLICY = sig
  val name : string
  val mem : Page.key -> bool
  val is_dirty : Page.key -> bool
  val access : Page.key -> dirty:bool -> bool
  val insert : Page.key -> dirty:bool -> unit
  val evict : (Page.key -> dirty:bool -> unit) -> bool
  val remove : Page.key -> bool
  val clean : Page.key -> unit
  val size : unit -> int
  val iter : (Page.key -> unit) -> unit
end

type t = (module POLICY)
type factory = capacity:int -> t

let name (module P : POLICY) = P.name

(* Intrusive circular doubly-linked list with a sentinel, shared by all the
   list-based policies.  Every pointer is a plain [node] (the sentinel
   closes the ring), so linking and unlinking never allocate — this list
   sits under every page access of the simulator.  [weight] holds the
   clock's aged reference count; [tag] the owning segment of the
   two-queue policies; [dirty] the page's dirty bit (owned here rather
   than in a side table so a hit costs exactly one hash lookup). *)
module Dll = struct
  type node = {
    key : Page.key;
    mutable prev : node;
    mutable next : node;
    mutable weight : int;
    mutable dirty : bool;
    mutable tag : int;
  }

  type list_t = { sentinel : node; mutable count : int }

  let dummy_key = Page.File { ino = min_int; idx = min_int }

  let create () =
    let rec s =
      { key = dummy_key; prev = s; next = s; weight = 0; dirty = false; tag = 0 }
    in
    { sentinel = s; count = 0 }

  let is_empty t = t.count = 0

  (* head = MRU end, tail = LRU end *)
  let head t = t.sentinel.next
  let tail t = t.sentinel.prev

  let attach_front t node =
    let s = t.sentinel in
    node.prev <- s;
    node.next <- s.next;
    s.next.prev <- node;
    s.next <- node;
    t.count <- t.count + 1

  let push_front t key ~dirty =
    let s = t.sentinel in
    let node = { key; prev = s; next = s.next; weight = 0; dirty; tag = 0 } in
    s.next.prev <- node;
    s.next <- node;
    t.count <- t.count + 1;
    node

  let unlink t node =
    node.prev.next <- node.next;
    node.next.prev <- node.prev;
    node.prev <- node;
    node.next <- node;
    t.count <- t.count - 1

  let move_to_front t node =
    if t.sentinel.next != node then begin
      unlink t node;
      attach_front t node
    end

  let iter t f =
    let s = t.sentinel in
    let rec go node =
      if node != s then begin
        let next = node.next in
        f node;
        go next
      end
    in
    go s.next
end

(* Size a policy's node table to its pool: a right-sized table skips the
   grow-rehash ladder that a from-16 table pays on every fresh kernel
   (the crash explorer boots one per boundary), while the cap keeps a
   huge pool's boot allocation bounded — the table still grows on
   demand.  [capacity / 8] reflects that most pools run far below
   capacity in the simulated workloads. *)
let node_tbl ~capacity : Dll.node Page.Tbl.t =
  Page.Tbl.create (min (max 16 (capacity / 8)) 1024)

let find_node tbl key : Dll.node =
  (* [Hashtbl.find] + Not_found keeps the hit path allocation-free where
     [find_opt] would box a [Some] per lookup. *)
  Page.Tbl.find tbl key

let tbl_is_dirty tbl key =
  match find_node tbl key with
  | exception Not_found -> false
  | node -> node.Dll.dirty

(* Writeback without eviction (fsync): the page stays resident in place,
   only its dirty bit drops.  Unknown keys are ignored. *)
let tbl_clean tbl key =
  match find_node tbl key with
  | exception Not_found -> ()
  | node -> node.Dll.dirty <- false

(* LRU and MRU share everything except which end of the list the victim
   comes from. *)
let list_policy ~policy_name ~victim_end ~capacity () : t =
  let list = Dll.create () in
  let tbl = node_tbl ~capacity in
  (module struct
    let name = policy_name
    let mem key = Page.Tbl.mem tbl key
    let is_dirty key = tbl_is_dirty tbl key

    let access key ~dirty =
      match find_node tbl key with
      | exception Not_found -> false
      | node ->
        if dirty then node.Dll.dirty <- true;
        Dll.move_to_front list node;
        true

    let insert key ~dirty =
      (* the pool only inserts after a miss, so the key is known absent:
         [Page.Tbl.add] probes once where assert+replace probed thrice *)
      Page.Tbl.add tbl key (Dll.push_front list key ~dirty)

    let evict on_evict =
      if Dll.is_empty list then false
      else begin
        let node = match victim_end with `Lru -> Dll.tail list | `Mru -> Dll.head list in
        Dll.unlink list node;
        Page.Tbl.remove tbl node.Dll.key;
        on_evict node.Dll.key ~dirty:node.Dll.dirty;
        true
      end

    let remove key =
      match find_node tbl key with
      | exception Not_found -> false
      | node ->
        Dll.unlink list node;
        Page.Tbl.remove tbl key;
        true

    let clean key = tbl_clean tbl key
    let size () = list.Dll.count
    let iter f = Dll.iter list (fun node -> f node.Dll.key)
  end)

let lru ~capacity = list_policy ~policy_name:"lru" ~victim_end:`Lru ~capacity ()

let mru_sticky ~capacity =
  list_policy ~policy_name:"mru-sticky" ~victim_end:`Mru ~capacity ()

let fifo ~capacity : t =
  let list = Dll.create () in
  let tbl = node_tbl ~capacity in
  (module struct
    let name = "fifo"
    let mem key = Page.Tbl.mem tbl key
    let is_dirty key = tbl_is_dirty tbl key

    let access key ~dirty =
      match find_node tbl key with
      | exception Not_found -> false
      | node ->
        if dirty then node.Dll.dirty <- true;
        true

    let insert key ~dirty =
      Page.Tbl.add tbl key (Dll.push_front list key ~dirty)

    let evict on_evict =
      if Dll.is_empty list then false
      else begin
        let node = Dll.tail list in
        Dll.unlink list node;
        Page.Tbl.remove tbl node.Dll.key;
        on_evict node.Dll.key ~dirty:node.Dll.dirty;
        true
      end

    let remove key =
      match find_node tbl key with
      | exception Not_found -> false
      | node ->
        Dll.unlink list node;
        Page.Tbl.remove tbl key;
        true

    let clean key = tbl_clean tbl key
    let size () = list.Dll.count
    let iter f = Dll.iter list (fun node -> f node.Dll.key)
  end)

(* Clock with reference aging.  The list acts as the ring in insertion
   order; the hand sweeps from the LRU end, decrementing each page's aged
   reference count until it finds a cold (zero-weight) page.  Pages arrive
   with weight 1 (the faulting access references them) and repeated hits
   raise the weight up to a small cap, so genuinely re-used pages (a
   recycled heap, a hot file) survive several cache turnovers while
   streamed-once pages decay to FIFO — the behaviour of real active/
   inactive page aging. *)
let clock_max_weight = 2

let clock ~capacity : t =
  let list = Dll.create () in
  let tbl = node_tbl ~capacity in
  (module struct
    let name = "clock"
    let mem key = Page.Tbl.mem tbl key
    let is_dirty key = tbl_is_dirty tbl key

    let access key ~dirty =
      match find_node tbl key with
      | exception Not_found -> false
      | node ->
        if dirty then node.Dll.dirty <- true;
        node.Dll.weight <- min (node.Dll.weight + 1) clock_max_weight;
        true

    let insert key ~dirty =
      let node = Dll.push_front list key ~dirty in
      node.Dll.weight <- 1;
      Page.Tbl.add tbl key node

    let evict on_evict =
      let rec sweep () =
        if Dll.is_empty list then false
        else begin
          let node = Dll.tail list in
          if node.Dll.weight > 0 then begin
            node.Dll.weight <- node.Dll.weight - 1;
            Dll.move_to_front list node;
            sweep ()
          end
          else begin
            Dll.unlink list node;
            Page.Tbl.remove tbl node.Dll.key;
            on_evict node.Dll.key ~dirty:node.Dll.dirty;
            true
          end
        end
      in
      sweep ()

    let remove key =
      match find_node tbl key with
      | exception Not_found -> false
      | node ->
        Dll.unlink list node;
        Page.Tbl.remove tbl key;
        true

    let clean key = tbl_clean tbl key
    let size () = list.Dll.count
    let iter f = Dll.iter list (fun node -> f node.Dll.key)
  end)

(* Segment tags for the two-queue policies. *)
let tag_probation = 0
let tag_main = 1

(* Simplified 2Q: new pages enter a FIFO probation queue sized to a quarter
   of capacity; a hit while on probation promotes to the protected LRU main
   queue.  Victims come from probation first.  Promotion moves the node
   between lists (same node, so its dirty bit travels with it). *)
let two_q ~capacity : t =
  let probation = Dll.create () in
  let main = Dll.create () in
  let where = node_tbl ~capacity in
  let probation_max = max 1 (capacity / 4) in
  (module struct
    let name = "two-q"
    let mem key = Page.Tbl.mem where key
    let is_dirty key = tbl_is_dirty where key

    let access key ~dirty =
      match find_node where key with
      | exception Not_found -> false
      | node ->
        if dirty then node.Dll.dirty <- true;
        if node.Dll.tag = tag_probation then begin
          Dll.unlink probation node;
          Dll.attach_front main node;
          node.Dll.tag <- tag_main
        end
        else Dll.move_to_front main node;
        true

    let insert key ~dirty =
      Page.Tbl.add where key (Dll.push_front probation key ~dirty)

    let take list on_evict =
      if Dll.is_empty list then false
      else begin
        let node = Dll.tail list in
        Dll.unlink list node;
        Page.Tbl.remove where node.Dll.key;
        on_evict node.Dll.key ~dirty:node.Dll.dirty;
        true
      end

    let evict on_evict =
      (* Evict from probation while it exceeds its share, otherwise give up
         the coldest protected page; fall back to whichever queue has
         pages. *)
      if probation.Dll.count > probation_max then take probation on_evict
      else take main on_evict || take probation on_evict

    let remove key =
      match find_node where key with
      | exception Not_found -> false
      | node ->
        Dll.unlink (if node.Dll.tag = tag_probation then probation else main) node;
        Page.Tbl.remove where key;
        true

    let clean key = tbl_clean where key
    let size () = probation.Dll.count + main.Dll.count

    let iter f =
      Dll.iter probation (fun node -> f node.Dll.key);
      Dll.iter main (fun node -> f node.Dll.key)
  end)

(* Segmented LRU: pages start probationary; a hit promotes to the protected
   segment (bounded to ~3/4 of capacity, demoting its LRU tail back to
   probation).  Victims come from the probationary tail. *)
let segmented_lru ~capacity : t =
  let probation = Dll.create () in
  let protected_ = Dll.create () in
  let where = node_tbl ~capacity in
  let protected_max = max 1 (capacity * 3 / 4) in
  (module struct
    let name = "segmented-lru"
    let mem key = Page.Tbl.mem where key
    let is_dirty key = tbl_is_dirty where key

    let demote_overflow () =
      while protected_.Dll.count > protected_max do
        let node = Dll.tail protected_ in
        Dll.unlink protected_ node;
        Dll.attach_front probation node;
        node.Dll.tag <- tag_probation
      done

    let access key ~dirty =
      match find_node where key with
      | exception Not_found -> false
      | node ->
        if dirty then node.Dll.dirty <- true;
        if node.Dll.tag = tag_probation then begin
          Dll.unlink probation node;
          Dll.attach_front protected_ node;
          node.Dll.tag <- tag_main;
          demote_overflow ()
        end
        else Dll.move_to_front protected_ node;
        true

    let insert key ~dirty =
      Page.Tbl.add where key (Dll.push_front probation key ~dirty)

    let take list on_evict =
      if Dll.is_empty list then false
      else begin
        let node = Dll.tail list in
        Dll.unlink list node;
        Page.Tbl.remove where node.Dll.key;
        on_evict node.Dll.key ~dirty:node.Dll.dirty;
        true
      end

    let evict on_evict = take probation on_evict || take protected_ on_evict

    let remove key =
      match find_node where key with
      | exception Not_found -> false
      | node ->
        Dll.unlink
          (if node.Dll.tag = tag_probation then probation else protected_)
          node;
        Page.Tbl.remove where key;
        true

    let clean key = tbl_clean where key
    let size () = probation.Dll.count + protected_.Dll.count

    let iter f =
      Dll.iter probation (fun node -> f node.Dll.key);
      Dll.iter protected_ (fun node -> f node.Dll.key)
  end)

(* Approximate EELRU (Smaragdakis, Kaplan & Wilson, SIGMETRICS '99), the
   adaptive fix for LRU's looping worst case that the paper cites for
   "LRU worst-case mode".  Residents are split at an early-eviction point
   [e ~ capacity/2]; a bounded ghost list remembers recent evictions.
   When recently evicted pages keep being re-referenced (a loop larger
   than memory) while pages between [e] and the LRU tail are not, the
   policy evicts early — at position [e] — preserving the head of the
   loop so part of it always hits. *)
let eelru ~capacity : t =
  let early = Dll.create () in
  let late = Dll.create () in
  let where = node_tbl ~capacity in
  let ghosts : int Page.Tbl.t = Page.Tbl.create 64 in
  let ghost_fifo = Queue.create () in
  let ghost_max = max 8 capacity in
  let early_max = max 1 (capacity / 2) in
  let late_hits = ref 0.0 in
  let ghost_hits = ref 0.0 in
  let decay () =
    late_hits := !late_hits *. 0.999;
    ghost_hits := !ghost_hits *. 0.999
  in
  let add_ghost key =
    if not (Page.Tbl.mem ghosts key) then begin
      Page.Tbl.replace ghosts key 0;
      Queue.push key ghost_fifo;
      while Queue.length ghost_fifo > ghost_max do
        Page.Tbl.remove ghosts (Queue.pop ghost_fifo)
      done
    end
  in
  (* early = tag_main, late = tag_probation would read backwards; use
     explicit tags for the two recency segments instead. *)
  let tag_early = 0 and tag_late = 1 in
  (module struct
    let name = "eelru"
    let mem key = Page.Tbl.mem where key
    let is_dirty key = tbl_is_dirty where key

    let demote_overflow () =
      while early.Dll.count > early_max do
        let node = Dll.tail early in
        Dll.unlink early node;
        Dll.attach_front late node;
        node.Dll.tag <- tag_late
      done

    let access key ~dirty =
      match find_node where key with
      | exception Not_found -> false
      | node ->
        decay ();
        if dirty then node.Dll.dirty <- true;
        if node.Dll.tag = tag_early then Dll.move_to_front early node
        else begin
          (* a hit beyond the early point argues against early eviction *)
          late_hits := !late_hits +. 1.0;
          Dll.unlink late node;
          Dll.attach_front early node;
          node.Dll.tag <- tag_early;
          demote_overflow ()
        end;
        true

    let insert key ~dirty =
      decay ();
      if Page.Tbl.mem ghosts key then
        (* re-reference shortly after eviction: the loop is bigger than
           memory — evidence for evicting early *)
        ghost_hits := !ghost_hits +. 1.0;
      Page.Tbl.add where key (Dll.push_front early key ~dirty);
      demote_overflow ()

    let take_node list node on_evict =
      Dll.unlink list node;
      Page.Tbl.remove where node.Dll.key;
      add_ghost node.Dll.key;
      on_evict node.Dll.key ~dirty:node.Dll.dirty

    let take list on_evict =
      if Dll.is_empty list then false
      else begin
        take_node list (Dll.tail list) on_evict;
        true
      end

    let evict on_evict =
      let early_eviction = !ghost_hits > !late_hits +. 1.0 in
      if early_eviction then
        (* evict at the early point: the head of the late segment *)
        if not (Dll.is_empty late) then begin
          take_node late (Dll.head late) on_evict;
          true
        end
        else take early on_evict
      else take late on_evict || take early on_evict

    let remove key =
      match find_node where key with
      | exception Not_found -> false
      | node ->
        Dll.unlink (if node.Dll.tag = tag_early then early else late) node;
        Page.Tbl.remove where key;
        true

    let clean key = tbl_clean where key
    let size () = early.Dll.count + late.Dll.count

    let iter f =
      Dll.iter early (fun node -> f node.Dll.key);
      Dll.iter late (fun node -> f node.Dll.key)
  end)

let registry =
  [
    ("lru", lru);
    ("clock", clock);
    ("fifo", fifo);
    ("mru-sticky", mru_sticky);
    ("two-q", two_q);
    ("segmented-lru", segmented_lru);
    ("eelru", eelru);
  ]

let of_name n =
  match List.assoc_opt n registry with
  | Some f -> f
  | None -> invalid_arg ("Replacement.of_name: unknown policy " ^ n)

let all_names = List.map fst registry
