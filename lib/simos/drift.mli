(** Deterministic mid-run environment drift for the simulated OS.

    The fault plane ({!Fault}) models a {e noisy} observation channel; this
    plane models a {e changing} machine.  A {!scenario} is a seeded,
    explicit schedule of environment mutations — the page cache grows or
    shrinks, the replacement policy is swapped, the timer resolution
    coarsens (a jiffy-style clock replacing a cycle counter), sustained
    memory-pressure regimes come and go — applied at fixed virtual times by
    a background daemon ({!Kernel.start_drift_daemon}).  An ICL calibrated
    before such an event is silently wrong after it; the adaptive layer
    ([Graybox_core.Adaptive]) exists to notice and repair that.

    The contract matches {!Fault} and {!Crash}: with no scenario installed
    the kernel performs {e zero} extra work and zero extra RNG draws, so
    benign runs are bit-identical to a build without this module; the
    {!quiet} scenario (no events) is installable and indistinguishable
    from no plane. *)

(** One environment mutation. *)
type kind =
  | Cache_resize of float
      (** multiply the file-cache capacity by this factor (> 0); shrink
          victims are written back like any capacity miss *)
  | Policy_swap of string
      (** replace the file pool's replacement policy
          ({!Replacement.of_name}); resident pages carry over, recency
          state is lost *)
  | Timer_scale of int
      (** timer resolution multiplier (>= 1) in force from this event on;
          [1] restores the platform clock *)
  | Pressure_level of float
      (** fraction of usable pages ([0, 1]) the drift daemon holds
          resident from this event on; [0.] releases the regime *)

type event = { dv_at_ns : int; dv_kind : kind }
(** [dv_at_ns] is absolute virtual time (> 0, <= the scenario horizon). *)

type scenario = {
  dr_name : string;
  dr_seed : int;  (** reserved for derived schedules; no draws today *)
  dr_retouch_ns : int;
      (** how often the daemon re-touches its held pressure pages, keeping
          the regime resident against competing allocations *)
  dr_horizon_ns : int;  (** the daemon exits at this virtual time *)
  dr_events : event list;  (** strictly increasing [dv_at_ns] *)
}

val quiet : scenario
(** No events — installing it is indistinguishable from no plane. *)

val canonical : scenario
(** The reference drifting environment: cache shrink, policy swap to FIFO,
    a 1000x timer coarsening (100 ns cycle counter -> 100 us jiffy), a
    sustained pressure regime, then partial restoration; 30 s horizon. *)

val heavy : scenario
(** [canonical] with harsher magnitudes (quarter-size cache, 2000x timer,
    60% pressure). *)

val validate : scenario -> unit
(** Raise [Invalid_argument] naming the offending field when the scenario
    is malformed (non-positive resize factor, unknown policy name, timer
    scale below 1, pressure outside [0, 1], non-increasing or
    out-of-horizon event times, non-positive re-touch period).  Called by
    {!create}, so a bad scenario is rejected at install time. *)

val of_string : string -> scenario option
(** [""]/["none"] give [None]; ["quiet"]/["canonical"]/["heavy"] the
    presets.  Anything else raises [Invalid_argument] — same strict
    validation as [GRAYBOX_TRIALS]/[GRAYBOX_CRASH], a bad value is a hard
    error, not a silent default. *)

val of_env : unit -> scenario option
(** Reads [GRAYBOX_DRIFT] via {!of_string}. *)

val max_pressure_frac : scenario -> float
(** Largest [Pressure_level] in the schedule (0. when none) — sizes the
    daemon's held region up front. *)

(** {1 Runtime plane (held by the kernel)} *)

type t

val create : scenario -> t
(** Validates, then installs.  Raises [Invalid_argument] on a malformed
    scenario (see {!validate}). *)

val scenario : t -> scenario

val stop : t -> unit
(** Ask the drift daemon to exit at its next wake-up. *)

val stopped : t -> bool

val timer_factor : t -> int
(** Timer-resolution multiplier currently in force (1 until a
    [Timer_scale] event fires). *)

val set_timer_factor : t -> int -> unit
val pressure_level : t -> float
val set_pressure_level : t -> float -> unit

val note_applied : t -> kind -> unit
(** Count one applied event (the daemon calls this). *)

val note_evictions : t -> int -> unit
(** Count pages evicted by a cache shrink. *)

val note_restart : t -> unit
(** Whole-machine restart ({!Kernel.restart}): the regime held by the
    (now dead) daemon lapses — timer factor back to 1, pressure level to
    zero.  The schedule and the applied-event counters survive; they
    describe the experiment, not the machine. *)

type stats = {
  d_events : int;  (** mutations applied *)
  d_resizes : int;
  d_swaps : int;
  d_timer_changes : int;
  d_pressure_shifts : int;
  d_evictions : int;  (** pages pushed out by cache shrinks *)
}

val stats : t -> stats
val kind_to_string : kind -> string
