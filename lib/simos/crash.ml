exception Crashed

type scenario = {
  cs_name : string;
  cs_seed : int;
  cs_crash_at : int option;
  cs_prob : float;
}

let durable = { cs_name = "durable"; cs_seed = 0; cs_crash_at = None; cs_prob = 0.0 }

let at_syscall n =
  if n < 1 then invalid_arg "Crash.at_syscall: boundary index must be >= 1";
  { cs_name = Printf.sprintf "at:%d" n; cs_seed = 0; cs_crash_at = Some n; cs_prob = 0.0 }

let probabilistic ?(seed = 0xC4A5) ~prob () =
  if not (prob > 0.0 && prob <= 1.0) then
    invalid_arg "Crash.probabilistic: probability must be in (0, 1]";
  { cs_name = Printf.sprintf "prob:%g" prob; cs_seed = seed; cs_crash_at = None;
    cs_prob = prob }

(* Same strict-validation style as the other GRAYBOX_* planes: a bad
   value is a hard error, not a silent default (see Gray_util.Env). *)
let expected_grammar = "none, durable, at:N or a probability in (0,1]"

let parse_token token =
  match token with
  | "none" -> Gray_util.Env.Value None
  | "durable" -> Value (Some durable)
  | _ ->
    if String.length token > 3 && String.sub token 0 3 = "at:" then begin
      match int_of_string_opt (String.sub token 3 (String.length token - 3)) with
      | Some n when n >= 1 -> Value (Some (at_syscall n))
      | _ -> Invalid
    end
    else begin
      match float_of_string_opt token with
      | Some p when p > 0.0 && p <= 1.0 -> Value (Some (probabilistic ~prob:p ()))
      | _ -> Invalid
    end

let of_string s =
  let token = String.lowercase_ascii (String.trim s) in
  if token = "" then None
  else
    match parse_token token with
    | Gray_util.Env.Value v -> v
    | Soft (_, v) -> v
    | Invalid ->
      invalid_arg
        (Gray_util.Env.message ~var:"GRAYBOX_CRASH" ~token
           ~expected:expected_grammar)

let of_env () =
  Gray_util.Env.parse ~var:"GRAYBOX_CRASH" ~expected:expected_grammar
    ~on_invalid:`Raise ~default:None parse_token

type mutable_stats = { mutable m_crashes : int; mutable m_restarts : int }

type t = {
  c_scenario : scenario;
  c_rng : Gray_util.Rng.t;
  mutable c_syscalls : int;
  mutable c_armed : int option;  (* absolute tick count at which to fire *)
  mutable c_observer : (int -> unit) option;
  c_stats : mutable_stats;
}

let create sc =
  {
    c_scenario = sc;
    c_rng = Gray_util.Rng.create ~seed:sc.cs_seed;
    c_syscalls = 0;
    c_armed = sc.cs_crash_at;
    c_observer = None;
    c_stats = { m_crashes = 0; m_restarts = 0 };
  }

let scenario t = t.c_scenario
let syscalls t = t.c_syscalls

let arm_at t n =
  if n < 1 then invalid_arg "Crash.arm_at: boundary index must be >= 1";
  t.c_armed <- Some (t.c_syscalls + n)

let disarm t = t.c_armed <- None

let observe_boundaries t f = t.c_observer <- Some f

(* One syscall boundary.  Deterministic armed countdowns never draw from
   the RNG; probabilistic scenarios draw exactly once per boundary, so a
   run is as reproducible as a benign one.  The observer runs first, at
   the exact point an armed crash would fire, so the machine state it
   sees {e is} the state a crash at this boundary would leave behind. *)
let tick t =
  t.c_syscalls <- t.c_syscalls + 1;
  (match t.c_observer with None -> () | Some f -> f t.c_syscalls);
  let fire =
    match t.c_armed with
    | Some n -> t.c_syscalls = n
    | None ->
      t.c_scenario.cs_prob > 0.0
      && Gray_util.Rng.float t.c_rng 1.0 < t.c_scenario.cs_prob
  in
  if fire then t.c_stats.m_crashes <- t.c_stats.m_crashes + 1;
  fire

let note_restart t = t.c_stats.m_restarts <- t.c_stats.m_restarts + 1

type stats = { c_crashes : int; c_restarts : int }

let stats t = { c_crashes = t.c_stats.m_crashes; c_restarts = t.c_stats.m_restarts }
