module Tele = Gray_util.Telemetry
module Flight = Gray_util.Flight

type error =
  | Fs_error of Fs.error
  | Bad_fd
  | Bad_path
  | Retryable
  | Timeout
  | Unsupported of string
  | Sys_error of string

let error_to_string = function
  | Fs_error e -> Fs.error_to_string e
  | Bad_fd -> "bad file descriptor"
  | Bad_path -> "bad path (expected /d<volume>/...)"
  | Retryable -> "interrupted by transient fault (EINTR/EAGAIN-style; retry)"
  | Timeout -> "syscall deadline exceeded"
  | Unsupported reason -> "unsupported on this backend: " ^ reason
  | Sys_error errno -> "host system error: " ^ errno

type fd = int
type open_file = { of_vol : int; of_ino : int }

type region = {
  r_owner : int;
  r_start_vpn : int;
  r_pages : int;
  mutable r_live : bool;
}

type proc = {
  p_pid : int;
  p_fds : (int, open_file) Hashtbl.t;
  mutable p_next_fd : int;
  mutable p_next_vpn : int;
  mutable p_next_token : int;
  mutable p_regions : region list;
}

type volume = { mutable v_fs : Fs.t; v_disk : Disk.t }

type mutable_counters = {
  mutable m_reads : int;
  mutable m_writes : int;
  mutable m_bytes_read : int;
  mutable m_bytes_written : int;
  mutable m_page_ins : int;
  mutable m_page_outs : int;
  mutable m_zero_fills : int;
  mutable m_file_fetches : int;
  mutable m_file_writebacks : int;
}

type t = {
  mutable k_engine : Engine.t;  (* replaced wholesale by [restart] *)
  k_platform : Platform.t;
  k_volumes : volume array;
  k_swap : Disk.t;
  k_mem : Memory.t;
  k_cpu : Resource.t;
  k_noise : Gray_util.Rng.t;
  k_swapped : unit Page.Tbl.t;
  k_procs : (int, proc) Hashtbl.t;
  k_sched : Sched.t option;
  mutable k_next_pid : int;
  k_ctr : mutable_counters;
  k_faults : Fault.t option;
  k_crash : Crash.t option;
  k_drift : Drift.t option;
  k_account : Account.t option;
  k_flight : Flight.t option;
}

type env = { e_k : t; e_proc : proc; mutable e_acct : Account.stats option }

(* Volume [v]'s inodes are made globally unique by packing the volume index
   into the high bits; bit 43 marks the pseudo-file that stands for the
   volume's inode-table blocks. *)
let vol_shift = 44
let meta_bit = 1 lsl 43
let global_ino _t ~volume ~ino = (volume lsl vol_shift) lor ino
let meta_ino volume = (volume lsl vol_shift) lor meta_bit
let vol_of_gino gino = gino lsr vol_shift
let local_ino_of_gino gino = gino land (meta_bit - 1)
let gino_is_meta gino = gino land meta_bit <> 0

let boot ~engine ~platform ?(data_disks = 4) ?volume_blocks ?faults ?crash ?drift
    ?account ?flight ?sched ?(procs = 16) ~seed () =
  if data_disks < 1 then invalid_arg "Kernel.boot: need at least one data disk";
  let make_volume _ =
    let disk = Disk.create platform.Platform.disk in
    let blocks = Option.value volume_blocks ~default:(Disk.capacity_blocks disk) in
    if blocks > Disk.capacity_blocks disk then
      invalid_arg "Kernel.boot: volume larger than disk";
    { v_fs = Fs.create (Fs.default_config ~total_blocks:blocks); v_disk = disk }
  in
  {
    k_engine = engine;
    k_platform = platform;
    k_volumes = Array.init data_disks make_volume;
    k_swap = Disk.create platform.Platform.disk;
    k_mem = Memory.create ~usable_pages:(Platform.usable_pages platform)
        (Platform.memory_layout platform);
    k_cpu = Resource.create ~slots:platform.Platform.cpus;
    k_noise = Gray_util.Rng.create ~seed;
    (* starts small and grows on demand: most boots (and every post-crash
       reboot in an exploration sweep) never swap, and zeroing a 4096-slot
       table per boot dominated the explorer's boot cost *)
    k_swapped = Page.Tbl.create 16;
    (* fleets announce their size so the process table never rehashes
       mid-run; solo boots keep the small default *)
    k_procs = Hashtbl.create (max 16 procs);
    k_sched = Option.map Sched.create sched;
    k_next_pid = 1;
    k_ctr =
      {
        m_reads = 0;
        m_writes = 0;
        m_bytes_read = 0;
        m_bytes_written = 0;
        m_page_ins = 0;
        m_page_outs = 0;
        m_zero_fills = 0;
        m_file_fetches = 0;
        m_file_writebacks = 0;
      };
    k_faults =
      (match faults with
      | Some scenario -> Some (Fault.create scenario)
      | None -> (
        match platform.Platform.faults with
        | Some scenario -> Some (Fault.create scenario)
        | None ->
          (* opt-in from the outside: GRAYBOX_FAULTS=canonical|heavy|<x>
             runs any unsuspecting boot under fault injection, which is how
             CI keeps the resilience paths exercised *)
          Option.map Fault.create (Fault.of_env ())));
    k_crash =
      (match crash with
      | Some scenario -> Some (Crash.create scenario)
      | None ->
        (* GRAYBOX_CRASH=durable|at:N|<p> — same opt-in pattern *)
        Option.map Crash.create (Crash.of_env ()));
    k_drift =
      (match drift with
      | Some scenario -> Some (Drift.create scenario)
      | None ->
        (* GRAYBOX_DRIFT=quiet|canonical|heavy — same opt-in pattern *)
        Option.map Drift.create (Drift.of_env ()));
    (* Accounting and the flight recorder are on by default (they draw no
       RNG and advance no clock, so the simulation is unaffected);
       GRAYBOX_ACCOUNT=off / GRAYBOX_FLIGHT=off opt out, and explicit
       boot arguments win over the environment. *)
    k_account =
      (match account with
      | Some true -> Some (Account.create ())
      | Some false -> None
      | None -> if Account.of_env () then Some (Account.create ()) else None);
    k_flight =
      (match flight with
      | Some true -> Some (Flight.create ())
      | Some false -> None
      | None -> Flight.of_env ());
  }

(* Adopt a volume image on a freshly booted kernel (the snapshot-mode
   crash explorer: a fresh boot plus a rolled-back image is the restarted
   machine, minus the replay).  Must run before any process does: resident
   file pages and open descriptors are keyed by the old volume's inodes
   and would go stale — on a fresh boot both sets are empty. *)
let install_volume_image t i fs = t.k_volumes.(i).v_fs <- fs

let engine t = t.k_engine
let platform t = t.k_platform
let data_disks t = Array.length t.k_volumes
let volume_root i = Printf.sprintf "/d%d" i
let memory t = t.k_mem
let volume_fs t i = t.k_volumes.(i).v_fs
let volume_disk t i = t.k_volumes.(i).v_disk
let swap_disk t = t.k_swap
let pid env = env.e_proc.p_pid
let kernel_of_env env = env.e_k
let account t = t.k_account
let flight t = t.k_flight
let sched t = t.k_sched
let cpu_busy_ns t = Resource.busy_ns t.k_cpu

(* Non-zero only when accounting is on, so accounting-off telemetry keeps
   the untagged (pre-accounting) entry shape. *)
let spid env = match env.e_acct with None -> 0 | Some st -> st.Account.st_pid

let fresh_token env =
  let proc = env.e_proc in
  let token = proc.p_next_token in
  proc.p_next_token <- token + 1;
  token

let resolve_path t path =
  let fail = Error Bad_path in
  if String.length path < 2 || path.[0] <> '/' || path.[1] <> 'd' then fail
  else begin
    let rest_start = match String.index_from_opt path 1 '/' with Some i -> i | None -> String.length path in
    let vol_str = String.sub path 2 (rest_start - 2) in
    match int_of_string_opt vol_str with
    | None -> fail
    | Some v when v < 0 || v >= Array.length t.k_volumes -> fail
    | Some v ->
      let rest =
        if rest_start >= String.length path then "/"
        else String.sub path rest_start (String.length path - rest_start)
      in
      Ok (v, rest)
  end

(* ---- processes ---- *)

let spawn t ?(name = "proc") ?(weight = 1) ?at body =
  let p_pid = t.k_next_pid in
  t.k_next_pid <- t.k_next_pid + 1;
  let proc =
    {
      p_pid;
      p_fds = Hashtbl.create 8;
      p_next_fd = 3;
      p_next_vpn = 0;
      p_next_token = 1;
      p_regions = [];
    }
  in
  let env = { e_k = t; e_proc = proc; e_acct = None } in
  (* Dead regions already dropped their pages (cache and swap) at vfree
     time, and every anonymous page of this process lives in some region,
     so walking the live regions covers the whole address space — no
     pid-wide scan of the swap table needed. *)
  let cleanup () =
    List.iter
      (fun r ->
        if r.r_live then begin
          r.r_live <- false;
          let lo = r.r_start_vpn and hi = r.r_start_vpn + r.r_pages in
          ignore (Memory.invalidate_anon_range t.k_mem ~pid:p_pid ~lo ~hi);
          if Page.Tbl.length t.k_swapped > 0 then
            for vpn = lo to hi - 1 do
              Page.Tbl.remove t.k_swapped (Page.Anon { pid = p_pid; vpn })
            done
        end)
      proc.p_regions;
    Hashtbl.remove t.k_procs p_pid;
    (* the run queue and the ledger both learn of the exit here, inside
       the same protected scope as registration: a crashed or cancelled
       fiber leaves neither a scheduler entry nor an unreapable row *)
    (match t.k_sched with
    | None -> ()
    | Some s -> Sched.unregister s ~pid:p_pid);
    match t.k_account with
    | None -> ()
    | Some a -> Account.note_exit a ~pid:p_pid
  in
  (* Registration happens when the fiber actually starts, inside the same
     protected scope as [cleanup]: a fiber cancelled before its first
     instruction (crash-path queue drain) then leaves no trace either. *)
  Engine.spawn t.k_engine ?at ~name (fun () ->
      Hashtbl.replace t.k_procs p_pid proc;
      (* The ledger row appears when the process actually starts, inside
         the same scope as registration: a fiber cancelled before its
         first instruction leaves no accounting trace either.  The row is
         cached in the env so per-syscall bumps never look it up. *)
      (match t.k_account with
      | None -> ()
      | Some a -> env.e_acct <- Some (Account.note_spawn a ~pid:p_pid ~name));
      (match t.k_sched with
      | None -> ()
      | Some s -> Sched.register s ~pid:p_pid ~weight);
      Fun.protect ~finally:cleanup (fun () -> body env))

let run t = Engine.run t.k_engine

(* ---- crash plane ---- *)

let crash_plane t = t.k_crash
let durability_on t = t.k_crash <> None

(* One syscall boundary.  Ticked at syscall {e entry}, so "crash at
   boundary N" means syscalls 1..N-1 completed and syscall N never
   started.  [Crash.Crashed] unwinds through the fiber's [Fun.protect]
   finalisers (descriptor tables, regions, the proc entry) and surfaces
   from [run] as [Engine.Fiber_crash]. *)
let crash_tick env =
  match env.e_k.k_crash with
  | None -> ()
  | Some c -> if Crash.tick c then raise Crash.Crashed

(* Every syscall passes through here at entry: flight-record the boundary
   (before the crash tick, so the boundary that kills the machine is the
   last event in the black box), bump the caller's per-kind ledger cell,
   then tick the crash plane.  All three legs are branch-plus-store —
   nothing allocates, draws RNG, or moves the clock. *)
let sys_entry env code =
  let t = env.e_k in
  (match t.k_flight with
  | None -> ()
  | Some fl ->
    let boundary =
      match t.k_crash with Some c -> Crash.syscalls c + 1 | None -> 0
    in
    Flight.record fl ~ts:(Engine.now t.k_engine) ~code ~pid:env.e_proc.p_pid
      ~a:boundary ~b:0);
  (match env.e_acct with
  | None -> ()
  | Some st -> Account.note_syscall st code);
  crash_tick env

(* Whole-machine restart after a crash: volatile state (page cache,
   anonymous memory, swap residency, processes) is discarded, each
   volume's file system rolls back to its durable image, and the device
   timelines reset with the fresh engine's clock.  Counters and RNG
   streams survive — they describe the experiment, not the machine.

   The per-process accounting ledger does NOT survive: the rebooted
   machine has no processes, so pid-indexed attribution (and the blame
   matrix) restarts empty.  The drift plane's timer-coarsening regime is
   likewise machine state — its daemon died with the crash and cannot
   keep the regime in force, so the reboot returns the clock to the
   platform resolution (the schedule itself, experiment state, survives
   and is not replayed).  The flight recorder deliberately survives: it
   is the black box, and the pre-crash tail is exactly what a post-crash
   dump is for. *)
let restart t =
  Memory.reset t.k_mem;
  Page.Tbl.reset t.k_swapped;
  Hashtbl.reset t.k_procs;
  Array.iter
    (fun v ->
      Fs.crash v.v_fs;
      Disk.reboot v.v_disk)
    t.k_volumes;
  Disk.reboot t.k_swap;
  Resource.reboot t.k_cpu;
  t.k_engine <- Engine.create ();
  Option.iter Account.reset t.k_account;
  Option.iter Sched.reset t.k_sched;
  Option.iter Drift.note_restart t.k_drift;
  match t.k_crash with
  | None -> ()
  | Some c ->
    Crash.disarm c;
    Crash.note_restart c

(* ---- time and cost plumbing ---- *)

let quantise resolution ns = if resolution <= 1 then ns else ns / resolution * resolution

(* Gray-box timer granularity: the platform clock, coarsened by the drift
   plane's current regime (a Timer_scale event in force), then by the
   fault plane when one asks for it.  Both compose multiplicatively. *)
let base_resolution t =
  let base = t.k_platform.Platform.timer_resolution_ns in
  match t.k_drift with
  | None -> base
  | Some d -> base * Drift.timer_factor d

let timer_resolution t =
  let base = base_resolution t in
  match t.k_faults with
  | None -> base
  | Some f -> Fault.timer_resolution f ~base

let gettime env =
  let t = env.e_k in
  match t.k_faults with
  | None -> quantise (base_resolution t) (Engine.now t.k_engine)
  | Some f ->
    quantise
      (Fault.timer_resolution f ~base:(base_resolution t))
      (Engine.now t.k_engine + Fault.timer_jitter f)

let noised t ns =
  let sigma = t.k_platform.Platform.noise_sigma in
  if sigma = 0.0 || ns = 0 then ns
  else
    max 0 (int_of_float (float_of_int ns *. Gray_util.Dist.lognormal_factor t.k_noise ~sigma))

(* A syscall accumulates cost on a cursor so that consecutive disk requests
   within one call queue behind each other correctly. *)
let start_call env = Engine.now env.e_k.k_engine + env.e_k.k_platform.Platform.syscall_overhead_ns

let finish_call env ~t0 ~now =
  let total = now - Engine.now env.e_k.k_engine in
  ignore t0;
  let extra =
    match env.e_k.k_faults with
    | None -> 0
    | Some f -> Fault.extra_latency f ~now:(Engine.now env.e_k.k_engine)
  in
  Engine.delay (noised env.e_k total + extra)

(* Transient-failure injection: the call is charged its overhead (the
   kernel did run) but performs no work and reports [Retryable]. *)
let target_name = function
  | Fault.Open -> "open"
  | Fault.Read -> "read"
  | Fault.Write -> "write"
  | Fault.Stat -> "stat"
  | Fault.Create -> "create"
  | Fault.Unlink -> "unlink"
  | Fault.Rename -> "rename"
  | Fault.Mkdir -> "mkdir"

let target_index = function
  | Fault.Open -> 0
  | Fault.Read -> 1
  | Fault.Write -> 2
  | Fault.Stat -> 3
  | Fault.Create -> 4
  | Fault.Unlink -> 5
  | Fault.Rename -> 6
  | Fault.Mkdir -> 7

let injected env target =
  match env.e_k.k_faults with
  | None -> false
  | Some f ->
    let hit = Fault.inject_error f target in
    if hit then begin
      Tele.event "simos.fault.inject"
        ~attrs:(fun () -> [ ("target", Tele.String (target_name target)) ]);
      (match env.e_acct with
      | None -> ()
      | Some st -> st.Account.faults <- st.Account.faults + 1);
      match env.e_k.k_flight with
      | None -> ()
      | Some fl ->
        Flight.record fl
          ~ts:(Engine.now env.e_k.k_engine)
          ~code:Flight.Fault ~pid:env.e_proc.p_pid ~a:(target_index target) ~b:0
    end;
    hit

let fail_transient env =
  Engine.delay (noised env.e_k env.e_k.k_platform.Platform.syscall_overhead_ns);
  Error Retryable

let copy_cost t bytes =
  int_of_float (float_of_int bytes *. t.k_platform.Platform.memcopy_byte_ns)

(* Write back / swap out one victim of a cache fill; returns the updated
   cursor.  Deleted files have no backing block left and are dropped.

   This is the single choke point every evicted page passes through
   (batched fills, per-page fills, drift-plane cache shrinks), so
   eviction blame lives here: the {e initiator} is the process in whose
   syscall the eviction happens — [env]'s pid, never the page owner.  A
   sync-driven or read-driven writeback of somebody else's dirty page is
   the caller's cost and the caller's eviction. *)
let writeback_victim env ~now key ~dirty =
  let t = env.e_k in
  let victim_pid = match key with Page.Anon { pid; _ } -> pid | Page.File _ -> 0 in
  (match t.k_account, env.e_acct with
  | Some a, Some st -> Account.note_eviction a ~evictor:st ~victim_pid
  | _ -> ());
  (match t.k_flight with
  | None -> ()
  | Some fl ->
    Flight.record fl ~ts:now ~code:Flight.Evict ~pid:env.e_proc.p_pid
      ~a:victim_pid
      ~b:(if dirty then 1 else 0));
  match key with
  | Page.File { ino = gino; idx } ->
    if dirty then begin
      let vol = vol_of_gino gino in
      let v = t.k_volumes.(vol) in
      let block =
        if gino_is_meta gino then Some idx
        else Fs.block_of_page v.v_fs ~ino:(local_ino_of_gino gino) ~idx
      in
      match block with
      | None -> now
      | Some b ->
        t.k_ctr.m_file_writebacks <- t.k_ctr.m_file_writebacks + 1;
        let d = Disk.access v.v_disk ~now ~start_block:b ~nblocks:1 in
        (match env.e_acct with
        | None -> ()
        | Some st ->
          st.Account.writebacks <- st.Account.writebacks + 1;
          st.Account.block_ns <- st.Account.block_ns + d);
        now + d
    end
    else now
  | Page.Anon { pid; vpn } ->
    (* Anonymous pages are dirty by construction (touches write). *)
    let slot = ((pid * 1_000_003) + vpn) mod Disk.capacity_blocks t.k_swap in
    let d = Disk.access t.k_swap ~now ~start_block:slot ~nblocks:1 in
    t.k_ctr.m_page_outs <- t.k_ctr.m_page_outs + 1;
    (match env.e_acct with
    | None -> ()
    | Some st ->
      st.Account.page_outs <- st.Account.page_outs + 1;
      st.Account.block_ns <- st.Account.block_ns + d);
    Page.Tbl.replace t.k_swapped key ();
    now + d

(* One page's worth of eviction telemetry (a metric bump and a point, as
   the per-page path has always emitted). *)
let note_evictions env ~n =
  if n > 0 then
    match Tele.active () with
    | None -> ()
    | Some s ->
      Tele.add_in s ~n "simos.kernel.evictions";
      Tele.point s "simos.kernel.evict" ~spid:(spid env)
        ~attrs:(fun () -> [ ("pages", Tele.Int n) ])

let acct_hit env =
  match env.e_acct with
  | None -> ()
  | Some st -> st.Account.hits <- st.Account.hits + 1

let acct_miss env =
  match env.e_acct with
  | None -> ()
  | Some st -> st.Account.misses <- st.Account.misses + 1

let handle_evictions env ~now evicted =
  let cur = ref now in
  List.iter
    (fun ({ key; dirty } : Pool.evicted) ->
      cur := writeback_victim env ~now:!cur key ~dirty)
    evicted;
  note_evictions env ~n:(List.length evicted);
  !cur

(* Fetch one file-metadata or data page into the cache.  The hit/miss
   bumps mirror the pool counters the [Memory.access] touches, keeping
   per-pid sums equal to the global pool totals. *)
let fill_page env ~now key =
  match Memory.access env.e_k.k_mem key ~dirty:false with
  | `Hit ->
    acct_hit env;
    now
  | `Filled evicted ->
    acct_miss env;
    handle_evictions env ~now evicted

(* Charge the read of an inode-table block (open/stat/unlink/utimes). *)
let inode_read env ~now ~vol ~ino =
  let t = env.e_k in
  let v = t.k_volumes.(vol) in
  let block = Fs.inode_block v.v_fs ~ino in
  let key = Page.File { ino = meta_ino vol; idx = block } in
  if Memory.contains t.k_mem key then begin
    ignore (Memory.access t.k_mem key ~dirty:false);
    acct_hit env;
    now
  end
  else begin
    let d = Disk.access v.v_disk ~now ~start_block:block ~nblocks:1 in
    (match env.e_acct with
    | None -> ()
    | Some st -> st.Account.block_ns <- st.Account.block_ns + d);
    fill_page env ~now:(now + d) key
  end

(* ---- path syscalls ---- *)

let with_volume env path f =
  match resolve_path env.e_k path with
  | Error e -> Error e
  | Ok (vol, rest) -> f vol rest

let lift_fs = function Ok v -> Ok v | Error e -> Error (Fs_error e)

let simple_path_call env ~name path f =
  with_volume env path (fun vol rest ->
      let t0 = Engine.now env.e_k.k_engine in
      let now = start_call env in
      let result, now = f vol rest now in
      finish_call env ~t0 ~now;
      (match Tele.active () with
      | None -> ()
      | Some s ->
        Tele.span_end s name ~ts:t0 ~spid:(spid env)
          ~attrs:(fun () -> [ ("path", Tele.String path) ]));
      result)

let alloc_fd env ~vol ~ino =
  let proc = env.e_proc in
  let fd = proc.p_next_fd in
  proc.p_next_fd <- fd + 1;
  Hashtbl.replace proc.p_fds fd { of_vol = vol; of_ino = ino };
  fd

let open_file env path =
  sys_entry env Flight.Open;
  if injected env Fault.Open then fail_transient env
  else
  simple_path_call env ~name:"simos.kernel.open" path (fun vol rest now ->
      let fs = env.e_k.k_volumes.(vol).v_fs in
      match Fs.lookup fs rest with
      | Error e -> (Error (Fs_error e), now)
      | Ok ino ->
        let now = inode_read env ~now ~vol ~ino in
        (Ok (alloc_fd env ~vol ~ino), now))

let create_file env path =
  sys_entry env Flight.Create;
  if injected env Fault.Create then fail_transient env
  else
  simple_path_call env ~name:"simos.kernel.create" path (fun vol rest now ->
      let fs = env.e_k.k_volumes.(vol).v_fs in
      match Fs.create_file fs rest with
      | Error e -> (Error (Fs_error e), now)
      | Ok ino -> (Ok (alloc_fd env ~vol ~ino), now))

let close env fd =
  sys_entry env Flight.Close;
  Hashtbl.remove env.e_proc.p_fds fd

let find_fd env fd =
  match Hashtbl.find_opt env.e_proc.p_fds fd with
  | None -> Error Bad_fd
  | Some f -> Ok f

let file_size env fd =
  match find_fd env fd with
  | Error _ -> 0
  | Ok { of_vol; of_ino } -> Fs.size_ino env.e_k.k_volumes.(of_vol).v_fs ~ino:of_ino

let page_size env = env.e_k.k_platform.Platform.page_size

(* Shared page-walking read/write core.  Batches consecutive missing disk
   blocks into single transfers so sequential scans stream. *)
let io_pages env ~vol ~ino ~off ~len ~write =
  let t = env.e_k in
  let v = t.k_volumes.(vol) in
  let psz = page_size env in
  let gino = global_ino t ~volume:vol ~ino in
  let t0 = Engine.now t.k_engine in
  let now = ref (start_call env) in
  let first_page = off / psz and last_page = (off + len - 1) / psz in
  let pending_start = ref (-1) and pending_count = ref 0 in
  let acct = env.e_acct in
  let flush_pending () =
    if !pending_count > 0 then begin
      let d =
        Disk.access v.v_disk ~now:!now ~start_block:!pending_start
          ~nblocks:!pending_count
      in
      now := !now + d;
      t.k_ctr.m_file_fetches <- t.k_ctr.m_file_fetches + !pending_count;
      (match acct with
      | None -> ()
      | Some st ->
        st.Account.fetches <- st.Account.fetches + !pending_count;
        st.Account.block_ns <- st.Account.block_ns + d);
      pending_start := -1;
      pending_count := 0
    end
  in
  let tele = Tele.active () in
  (* Batched fast path: one policy lookup classifies each page, and the
     callbacks replay the per-page path's actions in the same order — the
     pending-run accumulator still batches consecutive missing blocks into
     single disk transfers, and victims write back between them. *)
  Memory.access_run t.k_mem
    ~n:(last_page - first_page + 1)
    ~key:(fun i -> Page.File { ino = gino; idx = first_page + i })
    ~dirty:write
    ~on_hit:(fun _ _ ->
      acct_hit env;
      flush_pending ())
    ~on_miss:(fun i _ ->
      acct_miss env;
      (* Reads must fetch the page; writes of whole pages just allocate a
         cache page (read-modify-write of partial pages is not modelled). *)
      if not write then
        match Fs.block_of_page v.v_fs ~ino ~idx:(first_page + i) with
        | None -> () (* hole: zero-fill, copy cost only *)
        | Some b ->
          if !pending_count > 0 && b = !pending_start + !pending_count then
            incr pending_count
          else begin
            flush_pending ();
            pending_start := b;
            pending_count := 1
          end)
    ~on_evict:(fun k ~dirty -> now := writeback_victim env ~now:!now k ~dirty)
    ~on_page_end:(fun i ~evicted ->
      note_evictions env ~n:evicted;
      let p = first_page + i in
      let page_lo = p * psz in
      now := !now + copy_cost t (min (off + len) (page_lo + psz) - max off page_lo));
  flush_pending ();
  finish_call env ~t0 ~now:!now;
  match tele with
  | None -> ()
  | Some s ->
    Tele.span_end s
      (if write then "simos.kernel.write" else "simos.kernel.read")
      ~ts:t0 ~spid:(spid env)
      ~attrs:(fun () -> [ ("off", Tele.Int off); ("len", Tele.Int len) ])

let read env fd ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Kernel.read: negative offset or length";
  sys_entry env Flight.Read;
  if injected env Fault.Read then fail_transient env
  else
  match find_fd env fd with
  | Error e -> Error e
  | Ok { of_vol; of_ino } ->
    let t = env.e_k in
    let fs = t.k_volumes.(of_vol).v_fs in
    let size = Fs.size_ino fs ~ino:of_ino in
    let len = max 0 (min len (size - off)) in
    if len = 0 then begin
      Engine.delay (noised t t.k_platform.Platform.syscall_overhead_ns);
      Ok 0
    end
    else begin
      io_pages env ~vol:of_vol ~ino:of_ino ~off ~len ~write:false;
      Fs.mark_atime fs ~ino:of_ino ~now:(Engine.now t.k_engine);
      t.k_ctr.m_reads <- t.k_ctr.m_reads + 1;
      t.k_ctr.m_bytes_read <- t.k_ctr.m_bytes_read + len;
      (match env.e_acct with
      | None -> ()
      | Some st -> st.Account.bytes_read <- st.Account.bytes_read + len);
      Ok len
    end

let write env fd ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Kernel.write: negative offset or length";
  sys_entry env Flight.Write;
  if injected env Fault.Write then fail_transient env
  else
  match find_fd env fd with
  | Error e -> Error e
  | Ok { of_vol; of_ino } ->
    let t = env.e_k in
    let fs = t.k_volumes.(of_vol).v_fs in
    let size = Fs.size_ino fs ~ino:of_ino in
    let grow =
      if off + len > size then lift_fs (Fs.resize fs ~ino:of_ino ~size:(off + len))
      else Ok ()
    in
    (match grow with
    | Error e -> Error e
    | Ok () ->
      if len > 0 then io_pages env ~vol:of_vol ~ino:of_ino ~off ~len ~write:true
      else Engine.delay (noised t t.k_platform.Platform.syscall_overhead_ns);
      Fs.mark_mtime fs ~ino:of_ino ~now:(Engine.now t.k_engine);
      t.k_ctr.m_writes <- t.k_ctr.m_writes + 1;
      t.k_ctr.m_bytes_written <- t.k_ctr.m_bytes_written + len;
      (match env.e_acct with
      | None -> ()
      | Some st -> st.Account.bytes_written <- st.Account.bytes_written + len);
      Ok len)

let mkdir env path =
  sys_entry env Flight.Mkdir;
  if injected env Fault.Mkdir then fail_transient env
  else
  simple_path_call env ~name:"simos.kernel.mkdir" path (fun vol rest now ->
      (lift_fs (Result.map ignore (Fs.mkdir env.e_k.k_volumes.(vol).v_fs rest)), now))

let unlink env path =
  sys_entry env Flight.Unlink;
  if injected env Fault.Unlink then fail_transient env
  else
  simple_path_call env ~name:"simos.kernel.unlink" path (fun vol rest now ->
      let t = env.e_k in
      let fs = t.k_volumes.(vol).v_fs in
      match Fs.lookup fs rest with
      | Error e -> (Error (Fs_error e), now)
      | Ok ino -> (
        let now = inode_read env ~now ~vol ~ino in
        match Fs.unlink fs rest with
        | Error e -> (Error (Fs_error e), now)
        | Ok () ->
          let gino = global_ino t ~volume:vol ~ino in
          ignore
            (Memory.invalidate_if t.k_mem (fun key ->
                 match key with
                 | Page.File { ino = g; _ } -> g = gino
                 | Page.Anon _ -> false));
          (Ok (), now)))

let rename env ~src ~dst =
  sys_entry env Flight.Rename;
  if injected env Fault.Rename then fail_transient env
  else
  match resolve_path env.e_k src, resolve_path env.e_k dst with
  | Error e, _ | _, Error e -> Error e
  | Ok (v1, r1), Ok (v2, r2) ->
    if v1 <> v2 then Error Bad_path
    else
      simple_path_call env ~name:"simos.kernel.rename" src (fun _ _ now ->
          ignore r1;
          (lift_fs (Fs.rename env.e_k.k_volumes.(v1).v_fs ~src:r1 ~dst:r2), now))

let readdir env path =
  sys_entry env Flight.Readdir;
  simple_path_call env ~name:"simos.kernel.readdir" path (fun vol rest now ->
      let fs = env.e_k.k_volumes.(vol).v_fs in
      match Fs.readdir fs rest with
      | Error e -> (Error (Fs_error e), now)
      | Ok names -> (Ok names, now))

let stat env path =
  sys_entry env Flight.Stat;
  if injected env Fault.Stat then fail_transient env
  else
  simple_path_call env ~name:"simos.kernel.stat" path (fun vol rest now ->
      let fs = env.e_k.k_volumes.(vol).v_fs in
      match Fs.stat_path fs rest with
      | Error e -> (Error (Fs_error e), now)
      | Ok st ->
        let now = inode_read env ~now ~vol ~ino:st.Fs.st_ino in
        (Ok st, now))

let utimes env path ~atime ~mtime =
  sys_entry env Flight.Utimes;
  simple_path_call env ~name:"simos.kernel.utimes" path (fun vol rest now ->
      let fs = env.e_k.k_volumes.(vol).v_fs in
      match Fs.lookup fs rest with
      | Error e -> (Error (Fs_error e), now)
      | Ok ino ->
        let now = inode_read env ~now ~vol ~ino in
        (lift_fs (Fs.set_times fs ~ino ~atime ~mtime), now))

(* ---- durability syscalls ---- *)

(* With no crash plane installed there is no durable/volatile distinction
   to maintain: fsync and sync are free no-ops (no delay, no RNG draw, no
   cache traffic), keeping benign runs byte-identical to a build without
   this plane.  With a plane, they walk the page cache and write dirty
   pages back in place, batching physically contiguous blocks exactly as
   the read path batches fetches. *)

let fsync env fd =
  sys_entry env Flight.Fsync;
  match find_fd env fd with
  | Error e -> Error e
  | Ok { of_vol; of_ino } ->
    let t = env.e_k in
    if t.k_crash = None then Ok ()
    else begin
      let v = t.k_volumes.(of_vol) in
      let gino = global_ino t ~volume:of_vol ~ino:of_ino in
      let pool = Memory.file_pool t.k_mem in
      let t0 = Engine.now t.k_engine in
      let now = ref (start_call env) in
      let pending_start = ref (-1) and pending_count = ref 0 in
      (* Writeback attribution goes to the {e syncing} process — fsync
         runs inline in the caller's syscall, so [env] is the initiator,
         not whichever process dirtied the pages. *)
      let flush_pending () =
        if !pending_count > 0 then begin
          let d =
            Disk.access v.v_disk ~now:!now ~start_block:!pending_start
              ~nblocks:!pending_count
          in
          now := !now + d;
          t.k_ctr.m_file_writebacks <- t.k_ctr.m_file_writebacks + !pending_count;
          (match env.e_acct with
          | None -> ()
          | Some st ->
            st.Account.writebacks <- st.Account.writebacks + !pending_count;
            st.Account.block_ns <- st.Account.block_ns + d);
          pending_start := -1;
          pending_count := 0
        end
      in
      for idx = 0 to Fs.pages_of_file v.v_fs ~ino:of_ino - 1 do
        let key = Page.File { ino = gino; idx } in
        if Pool.is_dirty pool key then begin
          (match Fs.block_of_page v.v_fs ~ino:of_ino ~idx with
          | None -> ()
          | Some b ->
            if !pending_count > 0 && b = !pending_start + !pending_count then
              incr pending_count
            else begin
              flush_pending ();
              pending_start := b;
              pending_count := 1
            end);
          Pool.clean pool key
        end
      done;
      flush_pending ();
      (* the inode itself (size, times, blob) goes out last *)
      let d =
        Disk.access v.v_disk ~now:!now
          ~start_block:(Fs.inode_block v.v_fs ~ino:of_ino)
          ~nblocks:1
      in
      now := !now + d;
      (match env.e_acct with
      | None -> ()
      | Some st -> st.Account.block_ns <- st.Account.block_ns + d);
      (match Fs.fsync_ino v.v_fs ~ino:of_ino with Ok () -> () | Error _ -> ());
      finish_call env ~t0 ~now:!now;
      (match Tele.active () with
      | None -> ()
      | Some s ->
        Tele.span_end s "simos.kernel.fsync" ~ts:t0 ~spid:(spid env)
          ~attrs:(fun () -> [ ("ino", Tele.Int of_ino) ]));
      Ok ()
    end

let sync env =
  sys_entry env Flight.Sync;
  let t = env.e_k in
  match t.k_crash with
  | None -> ()
  | Some _ ->
    let pool = Memory.file_pool t.k_mem in
    let t0 = Engine.now t.k_engine in
    let now = ref (start_call env) in
    (* Collect dirty file pages with a backing block, then write them out
       sorted (volume, block): an elevator pass, contiguous runs batched. *)
    let dirty = ref [] in
    Pool.iter pool (fun key ->
        match key with
        | Page.File { ino = gino; idx } when Pool.is_dirty pool key ->
          let vol = vol_of_gino gino in
          let block =
            if gino_is_meta gino then Some idx
            else Fs.block_of_page t.k_volumes.(vol).v_fs ~ino:(local_ino_of_gino gino) ~idx
          in
          (match block with None -> () | Some b -> dirty := (vol, b, key) :: !dirty)
        | Page.File _ | Page.Anon _ -> ());
    let pending_vol = ref (-1) and pending_start = ref (-1) and pending_count = ref 0 in
    (* Elevator writebacks are the syncing caller's cost, like fsync's:
       the page owner is not consulted and not blamed. *)
    let flush_pending () =
      if !pending_count > 0 then begin
        let v = t.k_volumes.(!pending_vol) in
        let d =
          Disk.access v.v_disk ~now:!now ~start_block:!pending_start
            ~nblocks:!pending_count
        in
        now := !now + d;
        t.k_ctr.m_file_writebacks <- t.k_ctr.m_file_writebacks + !pending_count;
        (match env.e_acct with
        | None -> ()
        | Some st ->
          st.Account.writebacks <- st.Account.writebacks + !pending_count;
          st.Account.block_ns <- st.Account.block_ns + d);
        pending_count := 0
      end
    in
    List.iter
      (fun (vol, b, key) ->
        if !pending_count > 0 && vol = !pending_vol
           && b = !pending_start + !pending_count
        then incr pending_count
        else begin
          flush_pending ();
          pending_vol := vol;
          pending_start := b;
          pending_count := 1
        end;
        Pool.clean pool key)
      (List.sort compare !dirty);
    flush_pending ();
    Array.iter (fun v -> Fs.sync_all v.v_fs) t.k_volumes;
    finish_call env ~t0 ~now:!now;
    (match Tele.active () with
    | None -> ()
    | Some s -> Tele.span_end s "simos.kernel.sync" ~ts:t0 ~spid:(spid env))

(* Side-band whole-file content (the FLDC journal records): replaces the
   file's blob without touching its block layout.  Volatile until fsynced,
   like any other write. *)
let write_blob env fd s =
  sys_entry env Flight.Write_blob;
  match find_fd env fd with
  | Error e -> Error e
  | Ok { of_vol; of_ino } ->
    let t = env.e_k in
    let fs = t.k_volumes.(of_vol).v_fs in
    (match Fs.set_blob fs ~ino:of_ino s with
    | Error e -> Error (Fs_error e)
    | Ok () ->
      Fs.mark_mtime fs ~ino:of_ino ~now:(Engine.now t.k_engine);
      Engine.delay
        (noised t
           (t.k_platform.Platform.syscall_overhead_ns + copy_cost t (String.length s)));
      Ok ())

let read_blob env fd =
  sys_entry env Flight.Read_blob;
  match find_fd env fd with
  | Error e -> Error e
  | Ok { of_vol; of_ino } ->
    let t = env.e_k in
    let fs = t.k_volumes.(of_vol).v_fs in
    let s = Fs.blob fs ~ino:of_ino in
    Fs.mark_atime fs ~ino:of_ino ~now:(Engine.now t.k_engine);
    Engine.delay
      (noised t
         (t.k_platform.Platform.syscall_overhead_ns + copy_cost t (String.length s)));
    Ok s

(* ---- memory syscalls ---- *)

let valloc env ~pages =
  if pages <= 0 then invalid_arg "Kernel.valloc: pages must be positive";
  sys_entry env Flight.Valloc;
  let proc = env.e_proc in
  let region =
    { r_owner = proc.p_pid; r_start_vpn = proc.p_next_vpn; r_pages = pages; r_live = true }
  in
  proc.p_next_vpn <- proc.p_next_vpn + pages + 1;
  proc.p_regions <- region :: proc.p_regions;
  Engine.delay (noised env.e_k env.e_k.k_platform.Platform.syscall_overhead_ns);
  region

let vfree env region =
  if region.r_owner <> env.e_proc.p_pid then invalid_arg "Kernel.vfree: not the owner";
  sys_entry env Flight.Vfree;
  if region.r_live then begin
    region.r_live <- false;
    let t = env.e_k in
    let lo = region.r_start_vpn and hi = region.r_start_vpn + region.r_pages in
    ignore (Memory.invalidate_anon_range t.k_mem ~pid:region.r_owner ~lo ~hi);
    (* swap never touched (the common case for a short-lived region):
       skip building a probe key per page *)
    if Page.Tbl.length t.k_swapped > 0 then
      for vpn = lo to hi - 1 do
        Page.Tbl.remove t.k_swapped (Page.Anon { pid = region.r_owner; vpn })
      done;
    Engine.delay (noised t t.k_platform.Platform.syscall_overhead_ns)
  end

let region_pages region = region.r_pages

let vrelease env region ~first ~count =
  if region.r_owner <> env.e_proc.p_pid then invalid_arg "Kernel.vrelease: not the owner";
  if not region.r_live then invalid_arg "Kernel.vrelease: region freed";
  if first < 0 || count < 0 || first + count > region.r_pages then
    invalid_arg "Kernel.vrelease: out of range";
  sys_entry env Flight.Vrelease;
  let t = env.e_k in
  let lo = region.r_start_vpn + first and hi = region.r_start_vpn + first + count in
  ignore (Memory.invalidate_anon_range t.k_mem ~pid:region.r_owner ~lo ~hi);
  if Page.Tbl.length t.k_swapped > 0 then
    for vpn = lo to hi - 1 do
      Page.Tbl.remove t.k_swapped (Page.Anon { pid = region.r_owner; vpn })
    done;
  Engine.delay (noised t t.k_platform.Platform.syscall_overhead_ns)

let touch_pages env region ~first ~count =
  if not region.r_live then invalid_arg "Kernel.touch_pages: region freed";
  if region.r_owner <> env.e_proc.p_pid then
    invalid_arg "Kernel.touch_pages: not the owner";
  if first < 0 || count < 0 || first + count > region.r_pages then
    invalid_arg "Kernel.touch_pages: out of range";
  sys_entry env Flight.Touch;
  let t = env.e_k in
  let plat = t.k_platform in
  let resolution = timer_resolution t in
  let tele = Tele.active () in
  let t0 = Engine.now t.k_engine in
  let now = ref t0 in
  let results = Array.make count 0 in
  let base_vpn = region.r_start_vpn + first in
  let owner = region.r_owner in
  let before = ref !now in
  Memory.access_run t.k_mem ~n:count
    ~key:(fun i -> Page.Anon { pid = owner; vpn = base_vpn + i })
    ~dirty:true
    ~on_hit:(fun _ _ ->
      acct_hit env;
      before := !now;
      now := !now + plat.Platform.mem_touch_ns)
    ~on_miss:(fun i key ->
      acct_miss env;
      before := !now;
      if Page.Tbl.mem t.k_swapped key then begin
        let slot =
          ((owner * 1_000_003) + (base_vpn + i)) mod Disk.capacity_blocks t.k_swap
        in
        let d = Disk.access t.k_swap ~now:!now ~start_block:slot ~nblocks:1 in
        now := !now + d;
        Page.Tbl.remove t.k_swapped key;
        t.k_ctr.m_page_ins <- t.k_ctr.m_page_ins + 1;
        (match env.e_acct with
        | None -> ()
        | Some st ->
          st.Account.page_ins <- st.Account.page_ins + 1;
          st.Account.block_ns <- st.Account.block_ns + d);
        match tele with
        | None -> ()
        | Some s -> Tele.point s "simos.kernel.page_in" ~spid:(spid env)
      end
      else begin
        now := !now + plat.Platform.page_alloc_zero_ns;
        t.k_ctr.m_zero_fills <- t.k_ctr.m_zero_fills + 1;
        (match env.e_acct with
        | None -> ()
        | Some st -> st.Account.zero_fills <- st.Account.zero_fills + 1);
        match tele with
        | None -> ()
        | Some s -> Tele.point s "simos.kernel.zero_fill" ~spid:(spid env)
      end)
    ~on_evict:(fun k ~dirty -> now := writeback_victim env ~now:!now k ~dirty)
    ~on_page_end:(fun i ~evicted ->
      note_evictions env ~n:evicted;
      (* Background interference steals time mid-touch; the stolen time is
         real (advances the clock) and visible in the observed sample —
         exactly what fools a naive timing-based paging detector. *)
      (match t.k_faults with
      | None -> ()
      | Some f -> now := !now + Fault.extra_latency f ~now:!now);
      let raw = !now - !before in
      results.(i) <- max resolution (quantise resolution (noised t raw)));
  Engine.delay (!now - t0);
  (match tele with
  | None -> ()
  | Some s ->
    Tele.span_end s "simos.kernel.touch_pages" ~ts:t0 ~spid:(spid env)
      ~attrs:(fun () -> [ ("pages", Tele.Int count) ]));
  results

type vmstat = { vm_page_ins : int; vm_page_outs : int }

let vmstat env =
  sys_entry env Flight.Vmstat;
  let t = env.e_k in
  Engine.delay (noised t t.k_platform.Platform.syscall_overhead_ns);
  { vm_page_ins = t.k_ctr.m_page_ins; vm_page_outs = t.k_ctr.m_page_outs }

(* ---- CPU ---- *)

let compute env ~ns =
  if ns < 0 then invalid_arg "Kernel.compute: negative duration";
  sys_entry env Flight.Compute;
  let t = env.e_k in
  let duration = noised t ns in
  (* CPU attribution is service time (the noised burst), not queueing. *)
  (match env.e_acct with
  | None -> ()
  | Some st -> st.Account.cpu_ns <- st.Account.cpu_ns + duration);
  match t.k_sched with
  | Some s when Sched.participants s > 1 && duration > 0 ->
    (* Contended: reserve the burst one weighted quantum at a time,
       re-entering the slot timeline between slices.  Every contending
       fiber does the same, so FCFS at quantum granularity is weighted
       round-robin.  The burst was noised once, above — slicing adds no
       RNG draws, so the timing channel is the same either way. *)
    let p = env.e_proc.p_pid in
    let chunk = Sched.chunk_ns s ~pid:p in
    let remaining = ref duration in
    while !remaining > 0 do
      let len = min chunk !remaining in
      Engine.delay
        (Resource.acquire t.k_cpu ~now:(Engine.now t.k_engine) ~duration:len);
      Sched.note_slice s ~pid:p ~ns:len;
      remaining := !remaining - len
    done
  | Some s ->
    (* Sole registered process: the exact legacy path (one reservation,
       one delay), so an uncontended scheduler kernel is byte-identical
       to a scheduler-less one.  Grants are still recorded. *)
    Sched.note_slice s ~pid:env.e_proc.p_pid ~ns:duration;
    Engine.delay (Resource.acquire t.k_cpu ~now:(Engine.now t.k_engine) ~duration)
  | None ->
    Engine.delay (Resource.acquire t.k_cpu ~now:(Engine.now t.k_engine) ~duration)

let compute_bytes env ~bytes ~ns_per_byte =
  compute env ~ns:(int_of_float (float_of_int bytes *. ns_per_byte))

(* ---- fault plane ---- *)

let fault_plane t = t.k_faults
let stop_faults t = Option.iter Fault.stop t.k_faults

(* The scenario's background interference, run as ordinary simulated
   processes.  Both fibers are horizon-bounded (and honour [stop_faults])
   so [Engine.run] still terminates. *)
let start_fault_daemons t =
  match t.k_faults with
  | None -> ()
  | Some f ->
    let sc = Fault.scenario f in
    (match sc.Fault.sc_disturb with
    | Some d when d.Fault.di_evict_frac > 0.0 ->
      spawn t ~name:"fault.disturber" (fun env ->
          let rng = Fault.rng f in
          let rec loop () =
            if (not (Fault.stopped f)) && Engine.now t.k_engine < d.Fault.di_horizon_ns
            then begin
              let evicted =
                Memory.invalidate_if t.k_mem (fun key ->
                    match key with
                    | Page.File _ ->
                      Gray_util.Rng.float rng 1.0 < d.Fault.di_evict_frac
                    | Page.Anon _ -> false)
              in
              Fault.note_evictions f evicted;
              if evicted > 0 then begin
                Tele.event "simos.fault.disturb"
                  ~attrs:(fun () -> [ ("evicted", Tele.Int evicted) ]);
                match t.k_flight with
                | None -> ()
                | Some fl ->
                  Flight.record fl ~ts:(Engine.now t.k_engine)
                    ~code:Flight.Disturb ~pid:(pid env) ~a:evicted ~b:0
              end;
              Engine.delay d.Fault.di_period_ns;
              loop ()
            end
          in
          loop ())
    | Some _ | None -> ());
    (match sc.Fault.sc_pressure with
    | Some p when p.Fault.pr_pages > 0 ->
      spawn t ~name:"fault.pressure" (fun env ->
          let region = valloc env ~pages:p.Fault.pr_pages in
          let rec loop () =
            if (not (Fault.stopped f)) && Engine.now t.k_engine < p.Fault.pr_horizon_ns
            then begin
              ignore (touch_pages env region ~first:0 ~count:p.Fault.pr_pages);
              Fault.note_pressure_wave f;
              Tele.event "simos.fault.pressure_wave";
              (match t.k_flight with
              | None -> ()
              | Some fl ->
                Flight.record fl ~ts:(Engine.now t.k_engine)
                  ~code:Flight.Pressure ~pid:(pid env) ~a:p.Fault.pr_pages ~b:0);
              Engine.delay p.Fault.pr_hold_ns;
              vrelease env region ~first:0 ~count:p.Fault.pr_pages;
              Engine.delay p.Fault.pr_gap_ns;
              loop ()
            end
          in
          loop ();
          vfree env region)
    | Some _ | None -> ())

(* ---- drift plane ---- *)

let drift_plane t = t.k_drift
let stop_drift t = Option.iter Drift.stop t.k_drift

(* Replay the drift schedule as one ordinary simulated process.  The fiber
   is only spawned when the scenario has events, so installing [quiet] is
   indistinguishable from installing nothing.  The daemon owns a single
   region sized for the largest pressure regime of the schedule (untouched
   pages cost nothing) and re-touches whatever it currently holds every
   [dr_retouch_ns], keeping the regime resident against competitors —
   the same shape as the fault plane's pressure fiber, but level-driven
   rather than periodic. *)
let start_drift_daemon t =
  match t.k_drift with
  | None -> ()
  | Some d ->
    let sc = Drift.scenario d in
    if sc.Drift.dr_events <> [] then
      spawn t ~name:"drift.daemon" (fun env ->
          let usable = Platform.usable_pages t.k_platform in
          let cap =
            int_of_float (float_of_int usable *. Drift.max_pressure_frac sc)
          in
          let region = if cap > 0 then Some (valloc env ~pages:cap) else None in
          let held = ref 0 in
          (* Advance to [ts]; while a pressure regime is held, move in
             re-touch steps so the held pages stay hot. *)
          let rec wait_until ts =
            let now = Engine.now t.k_engine in
            if now < ts && not (Drift.stopped d) then begin
              (match region with
              | Some r when !held > 0 ->
                Engine.delay (min sc.Drift.dr_retouch_ns (ts - now));
                ignore (touch_pages env r ~first:0 ~count:!held)
              | Some _ | None -> Engine.delay (ts - now));
              wait_until ts
            end
          in
          let apply ev =
            match ev.Drift.dv_kind with
            | Drift.Cache_resize f ->
              let target =
                max 1
                  (int_of_float (float_of_int (Memory.file_capacity t.k_mem) *. f))
              in
              let t0 = Engine.now t.k_engine in
              let now = ref t0 in
              let evicted = ref 0 in
              Memory.resize_file_into t.k_mem ~capacity_pages:target
                ~on_evict:(fun k ~dirty ->
                  incr evicted;
                  now := writeback_victim env ~now:!now k ~dirty);
              note_evictions env ~n:!evicted;
              Drift.note_evictions d !evicted;
              (* shrink victims' writebacks are real time, like any fill *)
              Engine.delay (!now - t0)
            | Drift.Policy_swap name ->
              Memory.swap_file_policy t.k_mem (Replacement.of_name name)
            | Drift.Timer_scale n -> Drift.set_timer_factor d n
            | Drift.Pressure_level f ->
              let target =
                min cap (int_of_float (float_of_int usable *. f))
              in
              (match region with
              | None -> ()
              | Some r ->
                if target > !held then
                  ignore (touch_pages env r ~first:!held ~count:(target - !held))
                else if target < !held then
                  vrelease env r ~first:target ~count:(!held - target));
              held := target
          in
          let epoch_start = ref (Engine.now t.k_engine) in
          List.iter
            (fun ev ->
              if not (Drift.stopped d) then begin
                wait_until ev.Drift.dv_at_ns;
                if not (Drift.stopped d) then begin
                  apply ev;
                  Drift.note_applied d ev.Drift.dv_kind;
                  (match Tele.active () with
                  | None -> ()
                  | Some s ->
                    (* one span per environment epoch: from the previous
                       mutation (or boot) up to this one *)
                    Tele.span_end s "simos.drift.epoch" ~ts:!epoch_start
                      ~attrs:(fun () ->
                        [ ("next", Tele.String (Drift.kind_to_string ev.Drift.dv_kind)) ]));
                  epoch_start := Engine.now t.k_engine;
                  Tele.event "simos.drift.apply" ~attrs:(fun () ->
                      [ ("kind", Tele.String (Drift.kind_to_string ev.Drift.dv_kind)) ]);
                  match t.k_flight with
                  | None -> ()
                  | Some fl ->
                    let kind, arg =
                      match ev.Drift.dv_kind with
                      | Drift.Cache_resize f -> (0, int_of_float (f *. 100.0))
                      | Drift.Policy_swap _ -> (1, 0)
                      | Drift.Timer_scale n -> (2, n)
                      | Drift.Pressure_level f -> (3, int_of_float (f *. 100.0))
                    in
                    Flight.record fl ~ts:(Engine.now t.k_engine)
                      ~code:Flight.Drift ~pid:(pid env) ~a:kind ~b:arg
                end
              end)
            sc.Drift.dr_events;
          (* hold the final regime (if any) out to the horizon *)
          if !held > 0 then wait_until sc.Drift.dr_horizon_ns;
          Option.iter (fun r -> vfree env r) region)

(* ---- experiment control ---- *)

let flush_file_cache t = Memory.drop_file_cache t.k_mem

let drop_all_memory t =
  Memory.reset t.k_mem;
  Page.Tbl.reset t.k_swapped

let live_procs t = Hashtbl.length t.k_procs

let swapped_pages t ~pid =
  let n = ref 0 in
  Page.Tbl.iter
    (fun key () ->
      match key with
      | Page.Anon { pid = p; _ } when p = pid -> incr n
      | Page.Anon _ | Page.File _ -> ())
    t.k_swapped;
  !n

(* ---- counters ---- *)

type counters = {
  c_reads : int;
  c_writes : int;
  c_bytes_read : int;
  c_bytes_written : int;
  c_page_ins : int;
  c_page_outs : int;
  c_zero_fills : int;
  c_file_fetches : int;
  c_file_writebacks : int;
}

let counters t =
  {
    c_reads = t.k_ctr.m_reads;
    c_writes = t.k_ctr.m_writes;
    c_bytes_read = t.k_ctr.m_bytes_read;
    c_bytes_written = t.k_ctr.m_bytes_written;
    c_page_ins = t.k_ctr.m_page_ins;
    c_page_outs = t.k_ctr.m_page_outs;
    c_zero_fills = t.k_ctr.m_zero_fills;
    c_file_fetches = t.k_ctr.m_file_fetches;
    c_file_writebacks = t.k_ctr.m_file_writebacks;
  }

let reset_counters t =
  t.k_ctr.m_reads <- 0;
  t.k_ctr.m_writes <- 0;
  t.k_ctr.m_bytes_read <- 0;
  t.k_ctr.m_bytes_written <- 0;
  t.k_ctr.m_page_ins <- 0;
  t.k_ctr.m_page_outs <- 0;
  t.k_ctr.m_zero_fills <- 0;
  t.k_ctr.m_file_fetches <- 0;
  t.k_ctr.m_file_writebacks <- 0
