(* Proportional-share run-queue bookkeeping: see the .mli for the model.
   Pids are small and dense (the kernel hands them out sequentially), so
   weights and grants live in growable arrays like the accounting
   ledger's rows — registration, lookup and the per-slice bump are all
   array stores, nothing allocates on the compute hot path. *)

type config = { sd_quantum_ns : int }

let default_config = { sd_quantum_ns = 1_000_000 }

type t = {
  t_quantum_ns : int;
  mutable weights : int array;  (* index = pid; 0 = unregistered *)
  mutable granted : int array;  (* ns granted, survives unregister *)
  mutable participants : int;
  mutable slices : int;
  mutable granted_ns : int;
}

let initial_pids = 16

let create config =
  if config.sd_quantum_ns <= 0 then
    invalid_arg "Sched.create: quantum must be positive";
  {
    t_quantum_ns = config.sd_quantum_ns;
    weights = Array.make initial_pids 0;
    granted = Array.make initial_pids 0;
    participants = 0;
    slices = 0;
    granted_ns = 0;
  }

let quantum_ns t = t.t_quantum_ns

let ensure_pid t pid =
  if pid >= Array.length t.weights then begin
    let cap = ref (Array.length t.weights) in
    while pid >= !cap do
      cap := !cap * 2
    done;
    let fresh_w = Array.make !cap 0 and fresh_g = Array.make !cap 0 in
    Array.blit t.weights 0 fresh_w 0 (Array.length t.weights);
    Array.blit t.granted 0 fresh_g 0 (Array.length t.granted);
    t.weights <- fresh_w;
    t.granted <- fresh_g
  end

let register t ~pid ~weight =
  if weight <= 0 then invalid_arg "Sched.register: weight must be positive";
  if pid < 0 then invalid_arg "Sched.register: negative pid";
  ensure_pid t pid;
  if t.weights.(pid) = 0 then t.participants <- t.participants + 1;
  t.weights.(pid) <- weight

let unregister t ~pid =
  if pid >= 0 && pid < Array.length t.weights && t.weights.(pid) > 0 then begin
    t.weights.(pid) <- 0;
    t.participants <- t.participants - 1
  end

let weight t ~pid =
  if pid >= 0 && pid < Array.length t.weights then t.weights.(pid) else 0

let participants t = t.participants

let chunk_ns t ~pid = t.t_quantum_ns * max 1 (weight t ~pid)

let note_slice t ~pid ~ns =
  if pid >= 0 then begin
    ensure_pid t pid;
    t.granted.(pid) <- t.granted.(pid) + ns
  end;
  t.slices <- t.slices + 1;
  t.granted_ns <- t.granted_ns + ns

let slices t = t.slices
let granted_ns t = t.granted_ns

let granted_of t ~pid =
  if pid >= 0 && pid < Array.length t.granted then t.granted.(pid) else 0

let reset t =
  t.weights <- Array.make initial_pids 0;
  t.granted <- Array.make initial_pids 0;
  t.participants <- 0;
  t.slices <- 0;
  t.granted_ns <- 0
