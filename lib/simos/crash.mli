(** Crash–restart plane: whole-machine failures at syscall boundaries.

    The paper's FLDC refresh is explicitly non-atomic (footnote 4); proving
    that its repair script really recovers requires an OS that can {e die}
    — discarding every volatile structure (page cache, anonymous memory,
    swap state, processes) while the durable image (the {!Fs} namespace
    plus whatever {!Kernel.fsync}/{!Kernel.sync} made persistent) survives.

    A scenario either crashes deterministically at the [N]th syscall
    boundary after boot (or after {!arm_at}), or probabilistically per
    boundary from its own seeded RNG.  The kernel consults {!tick} at the
    {e entry} of every syscall: "crash at boundary [N]" means syscalls
    [1 .. N-1] completed and syscall [N] never started, the atomicity
    granularity of the whole plane.

    Installing the plane also switches the kernel to explicit durability
    semantics (see {!Kernel.durability_on}).  With no scenario installed
    the kernel performs zero extra work and zero RNG draws — benign runs
    are byte-identical to a build without this module. *)

exception Crashed
(** Raised from inside a syscall when the machine dies; surfaces to the
    driver as [Engine.Fiber_crash (_, Crashed)].  Recover with
    {!Kernel.restart}. *)

type scenario = {
  cs_name : string;
  cs_seed : int;  (** seeds the plane's private RNG (probabilistic mode) *)
  cs_crash_at : int option;  (** die at this syscall boundary (1-based) *)
  cs_prob : float;  (** per-boundary crash probability *)
}

val durable : scenario
(** Durability semantics on, no crashes — the quiet member of the plane,
    used as the baseline of the crash explorer. *)

val at_syscall : int -> scenario
(** Crash deterministically at the [n]th syscall boundary ([n >= 1]). *)

val probabilistic : ?seed:int -> prob:float -> unit -> scenario
(** Crash each boundary with probability [prob] in [(0, 1]]. *)

val of_string : string -> scenario option
(** [""]/["none"] gives [None]; ["durable"]; ["at:N"] with [N >= 1]; a
    float in [(0, 1]] is a per-boundary probability.  Anything else raises
    [Invalid_argument] — same strict style as [GRAYBOX_TRIALS]. *)

val of_env : unit -> scenario option
(** {!of_string} on [GRAYBOX_CRASH] (unset gives [None]). *)

(** {1 Runtime plane (held by the kernel)} *)

type t

val create : scenario -> t
val scenario : t -> scenario

val tick : t -> bool
(** Count one syscall boundary; [true] means the machine dies here (the
    kernel raises {!Crashed}).  Armed countdowns draw nothing from the
    RNG; probabilistic scenarios draw exactly once per boundary. *)

val arm_at : t -> int -> unit
(** Die at the [n]th boundary from now ([n >= 1]) — the crash explorer's
    cursor. *)

val disarm : t -> unit

val observe_boundaries : t -> (int -> unit) -> unit
(** Install a callback invoked at every boundary with the absolute
    {!syscalls} count, at the exact point an armed crash would fire — so
    the machine state the callback sees is the state a crash at that
    boundary would leave.  The snapshot-mode crash explorer uses this to
    capture per-boundary durable images in a single uncrashed run instead
    of one armed replay per boundary.  One observer per plane; installing
    replaces the previous one. *)

val syscalls : t -> int
(** Boundaries ticked since boot; the explorer differences this across a
    workload window to enumerate every crash point, no sampling. *)

val note_restart : t -> unit
(** Recorded by {!Kernel.restart}. *)

type stats = { c_crashes : int; c_restarts : int }

val stats : t -> stats
