(** Discrete-event simulation engine.

    Simulated processes are OCaml 5 fibers (effect handlers).  A fiber runs
    until it performs a {!delay}, at which point it is re-queued at
    [now + duration]; the engine then resumes whichever fiber has the
    earliest wake-up time.  Shallow handlers with an explicit trampoline
    keep the scheduler stack flat regardless of the number of events, and a
    monotonic sequence number breaks same-time ties so runs are fully
    deterministic.

    Time is an [int] count of simulated nanoseconds.

    The running-engine slot that routes {!delay} back to its engine is
    domain-local ([Domain.DLS]), so independent engines may run
    concurrently on separate domains (one per domain at a time) — the
    basis of the domain-parallel bench harness. *)

type t

val create : unit -> t

val now : t -> int
(** Current virtual time.  Outside {!run} this is the time of the last
    processed event. *)

val spawn : t -> ?at:int -> ?name:string -> (unit -> unit) -> unit
(** [spawn t f] schedules fiber [f] to start at time [at] (default: the
    current time).  May be called before [run] or from inside a running
    fiber.  [at] in the past of [now] raises [Invalid_argument]. *)

val delay : int -> unit
(** Suspend the calling fiber for the given number of nanoseconds
    (non-negative; 0 yields to co-scheduled fibers).  Must be called from
    inside a fiber; raises [Failure] otherwise. *)

val run : t -> unit
(** Process events until the queue is empty.  An exception escaping a fiber
    aborts the run, annotated with the fiber name; every {e other} parked
    fiber is then unwound with {!Cancelled} so its [Fun.protect]
    finalisers (resource reclamation) still execute.  At most one engine
    may run per domain at a time; a nested [run] raises [Failure]. *)

val events_processed : t -> int
(** Total resume events handled so far (a cheap progress metric). *)

exception Fiber_crash of string * exn
(** Raised by {!run} when a fiber dies: fiber name and original exception. *)

exception Cancelled
(** Raised {e inside} the surviving fibers while the engine aborts after a
    {!Fiber_crash}, to run their cleanup handlers.  Catching it to keep
    computing is a protocol violation. *)
