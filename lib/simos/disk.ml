type geometry = {
  model : string;
  cylinders : int;
  blocks_per_cylinder : int;
  seek_min_ns : int;
  seek_max_ns : int;
  rotation_ns : int;
  transfer_ns_per_block : int;
}

let ibm_9lzx =
  {
    model = "IBM 9LZX";
    cylinders = 4_400;
    blocks_per_cylinder = 512;
    (* 512 * 4 KB = 2 MB per cylinder, ~8.8 GB total *)
    seek_min_ns = 800_000;
    seek_max_ns = 10_500_000;
    rotation_ns = 6_000_000;
    (* 10 000 RPM *)
    transfer_ns_per_block = 200_000;
    (* 4 KB / 20 MB/s *)
  }

type t = {
  geom : geometry;
  mutable head_cyl : int;
  mutable next_sequential_block : int;  (* block after the last transfer *)
  mutable free_at : int;
  mutable requests : int;
  mutable blocks : int;
  mutable sequential : int;
  mutable busy_ns : int;
}

let create geom =
  {
    geom;
    head_cyl = 0;
    next_sequential_block = -1;
    free_at = 0;
    requests = 0;
    blocks = 0;
    sequential = 0;
    busy_ns = 0;
  }

let geometry t = t.geom
let capacity_blocks t = t.geom.cylinders * t.geom.blocks_per_cylinder
let cylinder_of_block t block = block / t.geom.blocks_per_cylinder

(* Square-root seek curve: fast for short distances, saturating towards the
   full stroke, which is the usual empirical fit for disk arms. *)
let seek_time t ~from_cyl ~to_cyl =
  let d = abs (to_cyl - from_cyl) in
  if d = 0 then 0
  else begin
    let frac = sqrt (float_of_int d /. float_of_int (max 1 (t.geom.cylinders - 1))) in
    t.geom.seek_min_ns
    + int_of_float (frac *. float_of_int (t.geom.seek_max_ns - t.geom.seek_min_ns))
  end

let check_range t ~start_block ~nblocks =
  if nblocks <= 0 then invalid_arg "Disk: nblocks must be positive";
  if start_block < 0 || start_block + nblocks > capacity_blocks t then
    invalid_arg "Disk: block out of range"

let bare_service t ~start_block ~nblocks =
  let transfer = nblocks * t.geom.transfer_ns_per_block in
  let start_cyl = cylinder_of_block t start_block in
  let end_cyl = cylinder_of_block t (start_block + nblocks - 1) in
  let crossings = (end_cyl - start_cyl) * t.geom.seek_min_ns in
  if start_block = t.next_sequential_block then
    (* track buffer / streaming: no positioning needed *)
    transfer + crossings
  else begin
    let seek = seek_time t ~from_cyl:t.head_cyl ~to_cyl:start_cyl in
    let rotation = t.geom.rotation_ns / 2 in
    seek + rotation + transfer + crossings
  end

let service_time t ~start_block ~nblocks =
  check_range t ~start_block ~nblocks;
  bare_service t ~start_block ~nblocks

let access t ~now ~start_block ~nblocks =
  check_range t ~start_block ~nblocks;
  let service = bare_service t ~start_block ~nblocks in
  if start_block = t.next_sequential_block then t.sequential <- t.sequential + 1;
  let start = max now t.free_at in
  let completion = start + service in
  t.free_at <- completion;
  t.head_cyl <- cylinder_of_block t (start_block + nblocks - 1);
  t.next_sequential_block <- start_block + nblocks;
  t.requests <- t.requests + 1;
  t.blocks <- t.blocks + nblocks;
  t.busy_ns <- t.busy_ns + service;
  completion - now

(* Power-cycle: the arm homes, the track buffer empties, and any queued
   service completes with the old machine — wall-clock restarts at 0 on the
   fresh engine, so the busy horizon must drop too.  Lifetime transfer
   counters survive (they describe the experiment, not the machine). *)
let reboot t =
  t.head_cyl <- 0;
  t.next_sequential_block <- -1;
  t.free_at <- 0

let requests t = t.requests
let blocks_transferred t = t.blocks
let sequential_hits t = t.sequential
let busy_ns t = t.busy_ns

let reset_counters t =
  t.requests <- 0;
  t.blocks <- 0;
  t.sequential <- 0;
  t.busy_ns <- 0
