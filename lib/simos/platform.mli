(** Platform presets: the cost model and memory organisation of the three
    operating systems the paper evaluates (Section 4, "All experiments are
    run upon a machine with two Intel Pentium-III processors, 896 MB of
    physical memory, and five IBM 9LZX disks").

    The presets share the hardware numbers and differ in how the file cache
    is organised, which is exactly the axis Figure 4 explores. *)

type t = {
  name : string;
  memory_mib : int;  (** physical memory (896) *)
  kernel_reserved_mib : int;  (** leaves ~830 MB usable, Section 4.3.3 *)
  cpus : int;
  page_size : int;
  file_cache : [ `Unified | `Fixed_mib of int ];
  file_policy : Replacement.factory;
  anon_policy : Replacement.factory;
  disk : Disk.geometry;
  syscall_overhead_ns : int;
  memcopy_byte_ns : float;  (** kernel-to-user copy, per byte *)
  mem_touch_ns : int;  (** write to a resident page *)
  page_alloc_zero_ns : int;  (** demand-zero fill of a fresh page *)
  timer_resolution_ns : int;  (** gray-box timer granularity (rdtsc-class) *)
  noise_sigma : float;  (** log-normal service-time noise (0 = none) *)
  faults : Fault.scenario option;
      (** hostile-environment preset applied at boot (default [None]; see
          {!Fault}) — {!Kernel.boot}'s [?faults] overrides it *)
}

val linux_2_2 : t
(** Unified clock-managed page/file cache. *)

val netbsd_1_5 : t
(** Fixed 64 MB LRU file cache ("a throwback to early UNIX
    implementations", Section 4.1.3), separate anonymous pool. *)

val solaris_7 : t
(** Large sticky file cache: once resident, pages are hard to dislodge. *)

val all : t list

val usable_pages : t -> int
(** Pages available to user file + anonymous memory. *)

val usable_bytes : t -> int
val memory_layout : t -> Memory.layout
val with_noise : t -> sigma:float -> t
val with_memory_mib : t -> int -> t
val with_file_policy : t -> Replacement.factory -> t

val with_faults : t -> Fault.scenario option -> t

val with_timer_resolution : t -> ns:int -> t

val hostile : t -> t
(** The platform with {!Fault.canonical} installed — the reference noisy,
    failure-prone observation channel of the robustness benches. *)

val by_name : string -> t
(** Raises [Invalid_argument] on unknown names. *)
