type error = Enoent | Eexist | Enotdir | Eisdir | Enotempty | Enospc

let error_to_string = function
  | Enoent -> "no such file or directory"
  | Eexist -> "file exists"
  | Enotdir -> "not a directory"
  | Eisdir -> "is a directory"
  | Enotempty -> "directory not empty"
  | Enospc -> "no space left on device"

type config = { total_blocks : int; blocks_per_group : int; inodes_per_group : int }

let inodes_per_block = 32 (* 128-byte on-disk inodes in 4 KB blocks *)

let default_config ~total_blocks =
  { total_blocks; blocks_per_group = 8192; inodes_per_group = 1024 }

type kind = Dir of (string, int) Hashtbl.t | Regular

type inode = {
  ino : int;
  mutable kind : kind;
  mutable size : int;
  mutable blocks : int array;  (* data blocks in page order; capacity grows *)
  mutable nblocks : int;
  mutable atime : int;
  mutable mtime : int;
  mutable blob : string;  (* side-band content (journal records) *)
  (* Durable image: the metadata as of the last fsync/sync.  The namespace
     itself (directory entries, inode existence) is synchronous — FFS
     writes it through at the syscall — so only per-inode write-back state
     needs a shadow.  [Fs.crash] rolls the volatile fields back to these. *)
  mutable dsize : int;
  mutable datime : int;
  mutable dmtime : int;
  mutable dblob : string;
}

type group = {
  index : int;
  first_block : int;  (* first data block (after the inode table) *)
  data_blocks : int;
  block_used : bool array;  (* indexed by [block - first_block] *)
  mutable block_free : int;
  mutable rotor : int;  (* next-fit scan position (FFS rotational rotor) *)
  inode_used : bool array;
  mutable inode_free : int;
  mutable inode_hint : int;
}

type t = {
  cfg : config;
  groups : group array;
  inodes : (int, inode) Hashtbl.t;
  root : int;
  mutable total_free_blocks : int;
  mutable total_free_inodes : int;
}

let inode_table_blocks cfg = (cfg.inodes_per_group + inodes_per_block - 1) / inodes_per_block

let group_of_ino ino ~inodes_per_group = ino / inodes_per_group

let make_group cfg index =
  let itb = inode_table_blocks cfg in
  let base = index * cfg.blocks_per_group in
  let data_blocks = cfg.blocks_per_group - itb in
  {
    index;
    first_block = base + itb;
    data_blocks;
    block_used = Array.make data_blocks false;
    block_free = data_blocks;
    rotor = 0;
    inode_used = Array.make cfg.inodes_per_group false;
    inode_free = cfg.inodes_per_group;
    inode_hint = 0;
  }

let create cfg =
  if cfg.total_blocks < cfg.blocks_per_group then
    invalid_arg "Fs.create: volume smaller than one cylinder group";
  let ngroups = cfg.total_blocks / cfg.blocks_per_group in
  let groups = Array.init ngroups (make_group cfg) in
  let t =
    {
      cfg;
      groups;
      inodes = Hashtbl.create 4096;
      root = 0;
      total_free_blocks = Array.fold_left (fun acc g -> acc + g.block_free) 0 groups;
      total_free_inodes = ngroups * cfg.inodes_per_group;
    }
  in
  (* Root directory occupies inode 0 of group 0. *)
  groups.(0).inode_used.(0) <- true;
  groups.(0).inode_free <- groups.(0).inode_free - 1;
  groups.(0).inode_hint <- 1;
  t.total_free_inodes <- t.total_free_inodes - 1;
  Hashtbl.replace t.inodes 0
    { ino = 0; kind = Dir (Hashtbl.create 16); size = 0; blocks = [||]; nblocks = 0;
      atime = 0; mtime = 0; blob = ""; dsize = 0; datime = 0; dmtime = 0; dblob = "" };
  t

let config t = t.cfg
let root_ino t = t.root

(* ---- allocation ---- *)

let alloc_inode t ~group =
  let ngroups = Array.length t.groups in
  let rec try_group i =
    if i = ngroups then None
    else begin
      let g = t.groups.((group + i) mod ngroups) in
      if g.inode_free = 0 then try_group (i + 1)
      else begin
        let slot = ref g.inode_hint in
        while g.inode_used.(!slot) do incr slot done;
        g.inode_used.(!slot) <- true;
        g.inode_free <- g.inode_free - 1;
        g.inode_hint <- !slot + 1;
        t.total_free_inodes <- t.total_free_inodes - 1;
        Some ((g.index * t.cfg.inodes_per_group) + !slot)
      end
    end
  in
  try_group 0

let free_inode t ino =
  let g = t.groups.(ino / t.cfg.inodes_per_group) in
  let slot = ino mod t.cfg.inodes_per_group in
  assert g.inode_used.(slot);
  g.inode_used.(slot) <- false;
  g.inode_free <- g.inode_free + 1;
  if slot < g.inode_hint then g.inode_hint <- slot;
  t.total_free_inodes <- t.total_free_inodes + 1

let group_of_block t block = t.groups.(block / t.cfg.blocks_per_group)

let take_block t g offset =
  g.block_used.(offset) <- true;
  g.block_free <- g.block_free - 1;
  g.rotor <- (offset + 1) mod g.data_blocks;
  t.total_free_blocks <- t.total_free_blocks - 1;
  g.first_block + offset

let block_is_free t block =
  let g = group_of_block t block in
  let offset = block - g.first_block in
  offset >= 0 && offset < g.data_blocks && not g.block_used.(offset)

(* FFS-flavoured block allocation: contiguous after [near] when possible,
   else first-fit in the preferred group, else the following groups. *)
let alloc_block t ~group ~near =
  let contiguous =
    match near with
    | Some b when b + 1 < t.cfg.total_blocks && block_is_free t (b + 1) ->
      let g = group_of_block t (b + 1) in
      Some (take_block t g (b + 1 - g.first_block))
    | _ -> None
  in
  match contiguous with
  | Some b -> Some b
  | None ->
    let ngroups = Array.length t.groups in
    let rec try_group i =
      if i = ngroups then None
      else begin
        let g = t.groups.((group + i) mod ngroups) in
        if g.block_free = 0 then try_group (i + 1)
        else begin
          (* Next-fit from the rotor, wrapping: freed holes behind the
             rotor are not preferred, which is what makes i-number order
             drift away from layout order as the file system ages. *)
          let offset = ref g.rotor in
          while g.block_used.(!offset) do
            offset := (!offset + 1) mod g.data_blocks
          done;
          Some (take_block t g !offset)
        end
      end
    in
    try_group 0

let free_block t block =
  let g = group_of_block t block in
  let offset = block - g.first_block in
  assert g.block_used.(offset);
  g.block_used.(offset) <- false;
  g.block_free <- g.block_free + 1;
  t.total_free_blocks <- t.total_free_blocks + 1

(* ---- paths ---- *)

let split_path path =
  if String.length path = 0 || path.[0] <> '/' then None
  else
    Some (List.filter (fun c -> c <> "") (String.split_on_char '/' path))

let get_inode t ino = Hashtbl.find t.inodes ino

let rec walk t dir_ino = function
  | [] -> Ok dir_ino
  | comp :: rest -> (
    match (get_inode t dir_ino).kind with
    | Regular -> Error Enotdir
    | Dir entries -> (
      match Hashtbl.find_opt entries comp with
      | None -> Error Enoent
      | Some ino -> walk t ino rest))

let lookup t path =
  match split_path path with
  | None -> Error Enoent
  | Some comps -> walk t t.root comps

(* Resolve a path into (parent directory inode, basename). *)
let resolve_parent t path =
  match split_path path with
  | None | Some [] -> Error Enoent
  | Some comps -> (
    let rec split_last acc = function
      | [] -> assert false
      | [ last ] -> (List.rev acc, last)
      | x :: rest -> split_last (x :: acc) rest
    in
    let dirs, base = split_last [] comps in
    match walk t t.root dirs with
    | Error e -> Error e
    | Ok dir_ino -> (
      match (get_inode t dir_ino).kind with
      | Regular -> Error Enotdir
      | Dir entries -> Ok (dir_ino, entries, base)))

(* ---- namespace operations ---- *)

let best_group_for_dir t =
  (* FFS places new directories in the group with the most free inodes. *)
  let best = ref 0 in
  Array.iter
    (fun g -> if g.inode_free > t.groups.(!best).inode_free then best := g.index)
    t.groups;
  !best

let add_inode t ino kind =
  Hashtbl.replace t.inodes ino
    { ino; kind; size = 0; blocks = [||]; nblocks = 0; atime = 0; mtime = 0;
      blob = ""; dsize = 0; datime = 0; dmtime = 0; dblob = "" }

let push_block node b =
  if node.nblocks = Array.length node.blocks then begin
    let ncap = max 8 (2 * Array.length node.blocks) in
    let nblocks = Array.make ncap 0 in
    Array.blit node.blocks 0 nblocks 0 node.nblocks;
    node.blocks <- nblocks
  end;
  node.blocks.(node.nblocks) <- b;
  node.nblocks <- node.nblocks + 1

let mkdir t path =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (_, entries, base) ->
    if Hashtbl.mem entries base then Error Eexist
    else (
      match alloc_inode t ~group:(best_group_for_dir t) with
      | None -> Error Enospc
      | Some ino ->
        add_inode t ino (Dir (Hashtbl.create 16));
        Hashtbl.replace entries base ino;
        Ok ino)

let create_file t path =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (dir_ino, entries, base) ->
    if Hashtbl.mem entries base then Error Eexist
    else (
      (* file inodes are allocated in the directory's own group *)
      let group = dir_ino / t.cfg.inodes_per_group in
      match alloc_inode t ~group with
      | None -> Error Enospc
      | Some ino ->
        add_inode t ino Regular;
        Hashtbl.replace entries base ino;
        Ok ino)

let free_file_storage t node =
  for i = 0 to node.nblocks - 1 do
    free_block t node.blocks.(i)
  done;
  node.blocks <- [||];
  node.nblocks <- 0;
  node.size <- 0

let remove_inode t node =
  (match node.kind with Regular -> free_file_storage t node | Dir _ -> ());
  Hashtbl.remove t.inodes node.ino;
  free_inode t node.ino

let unlink t path =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (_, entries, base) -> (
    match Hashtbl.find_opt entries base with
    | None -> Error Enoent
    | Some ino -> (
      let node = get_inode t ino in
      match node.kind with
      | Dir d when Hashtbl.length d > 0 -> Error Enotempty
      | Dir _ | Regular ->
        Hashtbl.remove entries base;
        remove_inode t node;
        Ok ()))

let rename t ~src ~dst =
  match resolve_parent t src with
  | Error e -> Error e
  | Ok (_, src_entries, src_base) -> (
    match Hashtbl.find_opt src_entries src_base with
    | None -> Error Enoent
    | Some src_ino -> (
      match resolve_parent t dst with
      | Error e -> Error e
      | Ok (_, dst_entries, dst_base) -> (
        let src_node = get_inode t src_ino in
        let replace_ok =
          match Hashtbl.find_opt dst_entries dst_base with
          | None -> Ok ()
          | Some dst_ino when dst_ino = src_ino -> Ok ()
          | Some dst_ino -> (
            let dst_node = get_inode t dst_ino in
            match (src_node.kind, dst_node.kind) with
            | _, Dir d when Hashtbl.length d > 0 -> Error Enotempty
            | Regular, Dir _ -> Error Eisdir
            | Dir _, Regular -> Error Enotdir
            | _ ->
              Hashtbl.remove dst_entries dst_base;
              remove_inode t dst_node;
              Ok ())
        in
        match replace_ok with
        | Error e -> Error e
        | Ok () ->
          Hashtbl.remove src_entries src_base;
          Hashtbl.replace dst_entries dst_base src_ino;
          Ok ())))

let readdir t path =
  match lookup t path with
  | Error e -> Error e
  | Ok ino -> (
    match (get_inode t ino).kind with
    | Regular -> Error Enotdir
    | Dir entries -> Ok (Hashtbl.fold (fun name _ acc -> name :: acc) entries []))

(* ---- attributes ---- *)

type stat_info = {
  st_ino : int;
  st_size : int;
  st_is_dir : bool;
  st_atime : int;
  st_mtime : int;
  st_blocks : int;
}

let stat_of_node node =
  {
    st_ino = node.ino;
    st_size = node.size;
    st_is_dir = (match node.kind with Dir _ -> true | Regular -> false);
    st_atime = node.atime;
    st_mtime = node.mtime;
    st_blocks = node.nblocks;
  }

let stat_ino t ino =
  match Hashtbl.find_opt t.inodes ino with
  | None -> Error Enoent
  | Some node -> Ok (stat_of_node node)

let stat_path t path =
  match lookup t path with Error e -> Error e | Ok ino -> stat_ino t ino

let set_times t ~ino ~atime ~mtime =
  match Hashtbl.find_opt t.inodes ino with
  | None -> Error Enoent
  | Some node ->
    node.atime <- atime;
    node.mtime <- mtime;
    Ok ()

let mark_atime t ~ino ~now =
  match Hashtbl.find_opt t.inodes ino with
  | None -> ()
  | Some node -> node.atime <- now

let mark_mtime t ~ino ~now =
  match Hashtbl.find_opt t.inodes ino with
  | None -> ()
  | Some node -> node.mtime <- now

(* ---- data layout ---- *)

let page_size = 4096

let pages_needed size = (size + page_size - 1) / page_size

let resize t ~ino ~size =
  match Hashtbl.find_opt t.inodes ino with
  | None -> Error Enoent
  | Some node -> (
    match node.kind with
    | Dir _ -> Error Eisdir
    | Regular ->
      let want = pages_needed size in
      if want > node.nblocks then begin
        let missing = want - node.nblocks in
        if missing > t.total_free_blocks then Error Enospc
        else begin
          let group = ino / t.cfg.inodes_per_group in
          for _ = 1 to missing do
            let near =
              if node.nblocks = 0 then None else Some node.blocks.(node.nblocks - 1)
            in
            match alloc_block t ~group ~near with
            | None -> assert false (* guarded by the free-count check *)
            | Some b -> push_block node b
          done;
          node.size <- size;
          Ok ()
        end
      end
      else begin
        let extra = node.nblocks - want in
        for _ = 1 to extra do
          assert (node.nblocks > 0);
          free_block t node.blocks.(node.nblocks - 1);
          node.nblocks <- node.nblocks - 1
        done;
        node.size <- size;
        Ok ()
      end)

let block_of_page t ~ino ~idx =
  match Hashtbl.find_opt t.inodes ino with
  | None -> None
  | Some node ->
    if idx < 0 || idx >= node.nblocks then None else Some node.blocks.(idx)

let pages_of_file t ~ino =
  match Hashtbl.find_opt t.inodes ino with None -> 0 | Some node -> node.nblocks

let inode_block t ~ino =
  let group = ino / t.cfg.inodes_per_group in
  let slot = ino mod t.cfg.inodes_per_group in
  (group * t.cfg.blocks_per_group) + (slot / inodes_per_block)

(* ---- durability ---- *)

let set_blob t ~ino s =
  match Hashtbl.find_opt t.inodes ino with
  | None -> Error Enoent
  | Some node -> (
    match node.kind with
    | Dir _ -> Error Eisdir
    | Regular ->
      node.blob <- s;
      Ok ())

let blob t ~ino =
  match Hashtbl.find_opt t.inodes ino with None -> "" | Some node -> node.blob

let flush_node node =
  node.dsize <- node.size;
  node.datime <- node.atime;
  node.dmtime <- node.mtime;
  node.dblob <- node.blob

let fsync_ino t ~ino =
  match Hashtbl.find_opt t.inodes ino with
  | None -> Error Enoent
  | Some node ->
    flush_node node;
    Ok ()

let sync_all t = Hashtbl.iter (fun _ node -> flush_node node) t.inodes

let sorted_inos t =
  List.sort compare (Hashtbl.fold (fun ino _ acc -> ino :: acc) t.inodes [])

(* The machine died: every inode's volatile fields roll back to the last
   flushed image.  Sizes shrink (writes only ever grow files and [dsize]
   trails [size]), freeing tail blocks, exactly as a real fsck truncates a
   file to the length its durable inode records.  Allocator cursors reset
   as on a fresh mount, so post-crash allocation is first-fit from slot 0. *)
let crash t =
  List.iter
    (fun ino ->
      let node = get_inode t ino in
      (match node.kind with
      | Regular when node.size <> node.dsize -> (
        match resize t ~ino ~size:node.dsize with
        | Ok () -> ()
        | Error _ -> assert false (* dsize <= size: shrinking cannot fail *))
      | Regular | Dir _ -> ());
      node.atime <- node.datime;
      node.mtime <- node.dmtime;
      node.blob <- node.dblob)
    (sorted_inos t);
  Array.iter
    (fun g ->
      g.rotor <- 0;
      g.inode_hint <- 0)
    t.groups

(* ---- fsck ---- *)

(* Full-volume consistency check, used by the crash explorer as the ground
   invariant after every crash+repair.  Deterministic: inodes and bitmaps
   are scanned in sorted order, so the message list is reproducible. *)
let check t =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let cfg = t.cfg in
  (* namespace: every inode reachable from the root exactly once *)
  let reached = Hashtbl.create 64 in
  let rec visit path ino =
    if Hashtbl.mem reached ino then add "inode %d double-linked at %s" ino path
    else begin
      Hashtbl.replace reached ino ();
      match Hashtbl.find_opt t.inodes ino with
      | None -> add "dangling entry %s -> missing inode %d" path ino
      | Some node -> (
        match node.kind with
        | Regular -> ()
        | Dir entries ->
          let names =
            List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) entries [])
          in
          List.iter
            (fun name -> visit (path ^ "/" ^ name) (Hashtbl.find entries name))
            names)
    end
  in
  visit "" t.root;
  List.iter
    (fun ino -> if not (Hashtbl.mem reached ino) then add "orphan inode %d" ino)
    (sorted_inos t);
  (* inode bitmaps: table contents, per-group counts, global count *)
  List.iter
    (fun ino ->
      let g = t.groups.(ino / cfg.inodes_per_group) in
      if not g.inode_used.(ino mod cfg.inodes_per_group) then
        add "inode %d exists but its slot is free in the bitmap" ino)
    (sorted_inos t);
  let total_free_inodes = ref 0 in
  Array.iter
    (fun g ->
      let used = ref 0 in
      Array.iteri
        (fun slot u ->
          if u then begin
            incr used;
            let ino = (g.index * cfg.inodes_per_group) + slot in
            if not (Hashtbl.mem t.inodes ino) then
              add "inode slot %d allocated but no inode exists" ino
          end)
        g.inode_used;
      let free = cfg.inodes_per_group - !used in
      if free <> g.inode_free then
        add "group %d: inode free count %d but bitmap says %d" g.index g.inode_free free;
      total_free_inodes := !total_free_inodes + g.inode_free)
    t.groups;
  if !total_free_inodes <> t.total_free_inodes then
    add "total free inodes %d but groups sum to %d" t.total_free_inodes !total_free_inodes;
  (* block ownership: in range, allocated, owned exactly once; and sizes
     agree with block counts *)
  let owner = Hashtbl.create 1024 in
  List.iter
    (fun ino ->
      let node = get_inode t ino in
      (match node.kind with
      | Regular when node.nblocks <> pages_needed node.size ->
        add "inode %d: %d blocks for size %d" ino node.nblocks node.size
      | Regular | Dir _ -> ());
      for i = 0 to node.nblocks - 1 do
        let b = node.blocks.(i) in
        if b < 0 || b >= cfg.total_blocks then add "inode %d: block %d out of range" ino b
        else begin
          (match Hashtbl.find_opt owner b with
          | Some other -> add "block %d owned by inodes %d and %d" b other ino
          | None -> Hashtbl.replace owner b ino);
          let g = group_of_block t b in
          let offset = b - g.first_block in
          if offset < 0 || offset >= g.data_blocks then
            add "inode %d: block %d lies in an inode-table region" ino b
          else if not g.block_used.(offset) then
            add "inode %d: block %d is free in the bitmap" ino b
        end
      done)
    (sorted_inos t);
  let total_free_blocks = ref 0 in
  Array.iter
    (fun g ->
      let used = ref 0 in
      Array.iteri
        (fun offset u ->
          if u then begin
            incr used;
            let b = g.first_block + offset in
            if not (Hashtbl.mem owner b) then add "block %d allocated but unowned" b
          end)
        g.block_used;
      let free = g.data_blocks - !used in
      if free <> g.block_free then
        add "group %d: block free count %d but bitmap says %d" g.index g.block_free free;
      total_free_blocks := !total_free_blocks + g.block_free)
    t.groups;
  if !total_free_blocks <> t.total_free_blocks then
    add "total free blocks %d but groups sum to %d" t.total_free_blocks !total_free_blocks;
  List.rev !problems

(* ---- introspection ---- *)

let layout_of_file t ~ino =
  match Hashtbl.find_opt t.inodes ino with
  | None -> [||]
  | Some node -> Array.sub node.blocks 0 node.nblocks

let free_blocks t = t.total_free_blocks
let free_inodes t = t.total_free_inodes

let fragmentation_of_file t ~ino =
  let layout = layout_of_file t ~ino in
  let n = Array.length layout in
  if n < 2 then 0.0
  else begin
    let breaks = ref 0 in
    for i = 1 to n - 1 do
      if layout.(i) <> layout.(i - 1) + 1 then incr breaks
    done;
    float_of_int !breaks /. float_of_int (n - 1)
  end
