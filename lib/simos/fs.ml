module Tele = Gray_util.Telemetry

type error = Enoent | Eexist | Enotdir | Eisdir | Enotempty | Enospc

let error_to_string = function
  | Enoent -> "no such file or directory"
  | Eexist -> "file exists"
  | Enotdir -> "not a directory"
  | Eisdir -> "is a directory"
  | Enotempty -> "directory not empty"
  | Enospc -> "no space left on device"

type config = { total_blocks : int; blocks_per_group : int; inodes_per_group : int }

let inodes_per_block = 32 (* 128-byte on-disk inodes in 4 KB blocks *)

let default_config ~total_blocks =
  { total_blocks; blocks_per_group = 8192; inodes_per_group = 1024 }

type kind = Dir of (string, int) Hashtbl.t | Regular

(* Per-file block lists live in one shared flat-int arena: an inode holds an
   (offset, capacity) extent into [t.arena] instead of its own growable
   [int array].  Growing a file past its extent's capacity moves it to a
   chunk of twice the size (power-of-two size classes, LIFO free lists
   threaded through the arena itself), so steady-state append/truncate
   cycles recycle chunks without allocating, and the block numbers of all
   files sit in one contiguous array. *)
type inode = {
  ino : int;
  mutable kind : kind;
  mutable size : int;
  mutable ext_off : int;  (* arena offset of this file's block list; -1 = none *)
  mutable ext_cap : int;  (* chunk capacity (a power of two, or 0) *)
  mutable nblocks : int;
  mutable atime : int;
  mutable mtime : int;
  mutable blob : string;  (* side-band content (journal records) *)
  (* Durable image: the metadata as of the last fsync/sync.  The namespace
     itself (directory entries, inode existence) is synchronous — FFS
     writes it through at the syscall — so only per-inode write-back state
     needs a shadow.  [Fs.crash] rolls the volatile fields back to these. *)
  mutable dsize : int;
  mutable datime : int;
  mutable dmtime : int;
  mutable dblob : string;
  (* Incremental-fsck metadata.  [parent]/[pname] record where this
     inode's (single) directory entry lives so a dirty inode's
     reachability is an O(depth) walk up instead of a whole-tree visit;
     [d_epoch] is the dirty mark (equal to [t.epoch] = dirty since the
     last checkpoint). *)
  mutable parent : int;
  mutable pname : string;
  mutable d_epoch : int;
}

type group = {
  index : int;
  first_block : int;  (* first data block (after the inode table) *)
  data_blocks : int;
  block_used : bool array;  (* indexed by [block - first_block] *)
  mutable block_free : int;
  mutable rotor : int;  (* next-fit scan position (FFS rotational rotor) *)
  inode_used : bool array;
  mutable inode_free : int;
  mutable inode_hint : int;
  mutable g_epoch : int;  (* dirty mark: bitmaps/counts changed this epoch *)
}

type t = {
  cfg : config;
  groups : group array;
  inodes : (int, inode) Hashtbl.t;
  root : int;
  mutable total_free_blocks : int;
  mutable total_free_inodes : int;
  (* shared extent arena (see [inode]) *)
  mutable arena : int array;
  mutable arena_used : int;
  free_chunks : int array;  (* per size class: head chunk offset, -1 = empty *)
  (* maintained block-ownership map: [owner.(b)] is the inode whose extent
     holds data block [b], or -1.  Kept in sync at attach/detach so the
     incremental checker verifies ownership without rebuilding the map. *)
  owner : int array;
  (* dirty epochs *)
  mutable epoch : int;
  mutable gen : int;  (* bumped when [epoch] wraps; disambiguates tokens *)
  mutable dirty_inos : int list;  (* may hold duplicates and removed inos *)
  mutable dirty_groups : int list;
}

let inode_table_blocks cfg = (cfg.inodes_per_group + inodes_per_block - 1) / inodes_per_block

let group_of_ino ino ~inodes_per_group = ino / inodes_per_group

(* ---- dirty epochs ---- *)

(* Epochs deliberately wrap at a small modulus so the renormalisation path
   is testable: at the wrap every stored mark is reset and [gen] is bumped,
   which keeps equality-on-epoch sound (a stale mark can never alias the
   current epoch) and invalidates outstanding checkpoint tokens. *)
let epoch_limit = 1 lsl 20

type checkpoint = int

let cp_token t = (t.gen * epoch_limit) + t.epoch

let mark_ino t node =
  if node.d_epoch <> t.epoch then begin
    node.d_epoch <- t.epoch;
    t.dirty_inos <- node.ino :: t.dirty_inos
  end

(* A removed inode has no record left to carry the mark; push
   unconditionally and let the checker dedupe. *)
let mark_removed t ino = t.dirty_inos <- ino :: t.dirty_inos

let mark_group t g =
  if g.g_epoch <> t.epoch then begin
    g.g_epoch <- t.epoch;
    t.dirty_groups <- g.index :: t.dirty_groups
  end

let checkpoint t =
  if t.epoch + 1 >= epoch_limit then begin
    Hashtbl.iter (fun _ node -> node.d_epoch <- 0) t.inodes;
    Array.iter (fun g -> g.g_epoch <- 0) t.groups;
    t.gen <- t.gen + 1;
    t.epoch <- 1
  end
  else t.epoch <- t.epoch + 1;
  t.dirty_inos <- [];
  t.dirty_groups <- [];
  cp_token t

let epoch_state t = (t.gen, t.epoch)

(* ---- extent arena ---- *)

let min_chunk = 8
let n_classes = 32

let class_of_cap cap =
  (* cap is a power of two >= min_chunk *)
  let rec go c bit = if bit >= cap then c else go (c + 1) (bit * 2) in
  go 0 min_chunk

let arena_alloc_chunk t cap =
  let cls = class_of_cap cap in
  let head = t.free_chunks.(cls) in
  if head >= 0 then begin
    t.free_chunks.(cls) <- t.arena.(head);
    head
  end
  else begin
    if t.arena_used + cap > Array.length t.arena then begin
      let ncap = max (2 * Array.length t.arena) (t.arena_used + cap) in
      let na = Array.make ncap 0 in
      Array.blit t.arena 0 na 0 t.arena_used;
      t.arena <- na
    end;
    let off = t.arena_used in
    t.arena_used <- t.arena_used + cap;
    off
  end

let arena_free_chunk t off cap =
  if cap > 0 then begin
    let cls = class_of_cap cap in
    t.arena.(off) <- t.free_chunks.(cls);
    t.free_chunks.(cls) <- off
  end

(* Grow [node]'s extent so one more block fits; amortised O(1), no OCaml
   allocation in steady state (chunks recycle through the free lists). *)
let extent_reserve t node =
  if node.nblocks = node.ext_cap then begin
    let ncap = if node.ext_cap = 0 then min_chunk else 2 * node.ext_cap in
    let noff = arena_alloc_chunk t ncap in
    if node.nblocks > 0 then Array.blit t.arena node.ext_off t.arena noff node.nblocks;
    arena_free_chunk t node.ext_off node.ext_cap;
    node.ext_off <- noff;
    node.ext_cap <- ncap
  end

let push_block t node b =
  extent_reserve t node;
  t.arena.(node.ext_off + node.nblocks) <- b;
  t.owner.(b) <- node.ino;
  node.nblocks <- node.nblocks + 1

let nth_block t node i = t.arena.(node.ext_off + i)

let arena_stats t = (t.arena_used, Array.length t.arena)

(* ---- construction ---- *)

let make_group cfg index =
  let itb = inode_table_blocks cfg in
  let base = index * cfg.blocks_per_group in
  let data_blocks = cfg.blocks_per_group - itb in
  {
    index;
    first_block = base + itb;
    data_blocks;
    block_used = Array.make data_blocks false;
    block_free = data_blocks;
    rotor = 0;
    inode_used = Array.make cfg.inodes_per_group false;
    inode_free = cfg.inodes_per_group;
    inode_hint = 0;
    g_epoch = 0;
  }

let make_inode ~ino ~kind ~parent ~pname ~d_epoch =
  { ino; kind; size = 0; ext_off = -1; ext_cap = 0; nblocks = 0;
    atime = 0; mtime = 0; blob = ""; dsize = 0; datime = 0; dmtime = 0; dblob = "";
    parent; pname; d_epoch }

let create cfg =
  if cfg.total_blocks < cfg.blocks_per_group then
    invalid_arg "Fs.create: volume smaller than one cylinder group";
  let ngroups = cfg.total_blocks / cfg.blocks_per_group in
  let groups = Array.init ngroups (make_group cfg) in
  let t =
    {
      cfg;
      groups;
      inodes = Hashtbl.create 64;
      root = 0;
      total_free_blocks = Array.fold_left (fun acc g -> acc + g.block_free) 0 groups;
      total_free_inodes = ngroups * cfg.inodes_per_group;
      arena = Array.make 512 0;
      arena_used = 0;
      free_chunks = Array.make n_classes (-1);
      owner = Array.make cfg.total_blocks (-1);
      epoch = 1;
      gen = 0;
      dirty_inos = [];
      dirty_groups = [];
    }
  in
  (* Root directory occupies inode 0 of group 0. *)
  groups.(0).inode_used.(0) <- true;
  groups.(0).inode_free <- groups.(0).inode_free - 1;
  groups.(0).inode_hint <- 1;
  t.total_free_inodes <- t.total_free_inodes - 1;
  Hashtbl.replace t.inodes 0
    (make_inode ~ino:0 ~kind:(Dir (Hashtbl.create 16)) ~parent:(-1) ~pname:""
       ~d_epoch:t.epoch);
  t.dirty_inos <- [ 0 ];
  mark_group t groups.(0);
  t

let config t = t.cfg
let root_ino t = t.root

(* ---- allocation ---- *)

let alloc_inode t ~group =
  let ngroups = Array.length t.groups in
  let rec try_group i =
    if i = ngroups then None
    else begin
      let g = t.groups.((group + i) mod ngroups) in
      if g.inode_free = 0 then try_group (i + 1)
      else begin
        let slot = ref g.inode_hint in
        while g.inode_used.(!slot) do incr slot done;
        g.inode_used.(!slot) <- true;
        g.inode_free <- g.inode_free - 1;
        g.inode_hint <- !slot + 1;
        t.total_free_inodes <- t.total_free_inodes - 1;
        mark_group t g;
        Some ((g.index * t.cfg.inodes_per_group) + !slot)
      end
    end
  in
  try_group 0

let free_inode t ino =
  let g = t.groups.(ino / t.cfg.inodes_per_group) in
  let slot = ino mod t.cfg.inodes_per_group in
  assert g.inode_used.(slot);
  g.inode_used.(slot) <- false;
  g.inode_free <- g.inode_free + 1;
  if slot < g.inode_hint then g.inode_hint <- slot;
  t.total_free_inodes <- t.total_free_inodes + 1;
  mark_group t g

let group_of_block t block = t.groups.(block / t.cfg.blocks_per_group)

let take_block t g offset =
  g.block_used.(offset) <- true;
  g.block_free <- g.block_free - 1;
  g.rotor <- (offset + 1) mod g.data_blocks;
  t.total_free_blocks <- t.total_free_blocks - 1;
  mark_group t g;
  g.first_block + offset

let block_is_free t block =
  let g = group_of_block t block in
  let offset = block - g.first_block in
  offset >= 0 && offset < g.data_blocks && not g.block_used.(offset)

(* FFS-flavoured block allocation: contiguous after [near] when possible,
   else first-fit in the preferred group, else the following groups. *)
let alloc_block t ~group ~near =
  let contiguous =
    match near with
    | Some b when b + 1 < t.cfg.total_blocks && block_is_free t (b + 1) ->
      let g = group_of_block t (b + 1) in
      Some (take_block t g (b + 1 - g.first_block))
    | _ -> None
  in
  match contiguous with
  | Some b -> Some b
  | None ->
    let ngroups = Array.length t.groups in
    let rec try_group i =
      if i = ngroups then None
      else begin
        let g = t.groups.((group + i) mod ngroups) in
        if g.block_free = 0 then try_group (i + 1)
        else begin
          (* Next-fit from the rotor, wrapping: freed holes behind the
             rotor are not preferred, which is what makes i-number order
             drift away from layout order as the file system ages. *)
          let offset = ref g.rotor in
          while g.block_used.(!offset) do
            offset := (!offset + 1) mod g.data_blocks
          done;
          Some (take_block t g !offset)
        end
      end
    in
    try_group 0

let free_block t block =
  let g = group_of_block t block in
  let offset = block - g.first_block in
  assert g.block_used.(offset);
  g.block_used.(offset) <- false;
  g.block_free <- g.block_free + 1;
  t.total_free_blocks <- t.total_free_blocks + 1;
  t.owner.(block) <- -1;
  mark_group t g

(* ---- paths ---- *)

let split_path path =
  if String.length path = 0 || path.[0] <> '/' then None
  else
    Some (List.filter (fun c -> c <> "") (String.split_on_char '/' path))

let get_inode t ino = Hashtbl.find t.inodes ino

let rec walk t dir_ino = function
  | [] -> Ok dir_ino
  | comp :: rest -> (
    match (get_inode t dir_ino).kind with
    | Regular -> Error Enotdir
    | Dir entries -> (
      match Hashtbl.find_opt entries comp with
      | None -> Error Enoent
      | Some ino -> walk t ino rest))

let lookup t path =
  match split_path path with
  | None -> Error Enoent
  | Some comps -> walk t t.root comps

(* Resolve a path into (parent directory inode, basename). *)
let resolve_parent t path =
  match split_path path with
  | None | Some [] -> Error Enoent
  | Some comps -> (
    let rec split_last acc = function
      | [] -> assert false
      | [ last ] -> (List.rev acc, last)
      | x :: rest -> split_last (x :: acc) rest
    in
    let dirs, base = split_last [] comps in
    match walk t t.root dirs with
    | Error e -> Error e
    | Ok dir_ino -> (
      match (get_inode t dir_ino).kind with
      | Regular -> Error Enotdir
      | Dir entries -> Ok (dir_ino, entries, base)))

(* ---- namespace operations ---- *)

let best_group_for_dir t =
  (* FFS places new directories in the group with the most free inodes. *)
  let best = ref 0 in
  Array.iter
    (fun g -> if g.inode_free > t.groups.(!best).inode_free then best := g.index)
    t.groups;
  !best

let add_inode t ino kind ~parent ~pname =
  Hashtbl.replace t.inodes ino (make_inode ~ino ~kind ~parent ~pname ~d_epoch:0);
  mark_ino t (get_inode t ino)

let mkdir t path =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (dir_ino, entries, base) ->
    if Hashtbl.mem entries base then Error Eexist
    else (
      match alloc_inode t ~group:(best_group_for_dir t) with
      | None -> Error Enospc
      | Some ino ->
        add_inode t ino (Dir (Hashtbl.create 16)) ~parent:dir_ino ~pname:base;
        Hashtbl.replace entries base ino;
        mark_ino t (get_inode t dir_ino);
        Ok ino)

let create_file t path =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (dir_ino, entries, base) ->
    if Hashtbl.mem entries base then Error Eexist
    else (
      (* file inodes are allocated in the directory's own group *)
      let group = dir_ino / t.cfg.inodes_per_group in
      match alloc_inode t ~group with
      | None -> Error Enospc
      | Some ino ->
        add_inode t ino Regular ~parent:dir_ino ~pname:base;
        Hashtbl.replace entries base ino;
        mark_ino t (get_inode t dir_ino);
        Ok ino)

let free_file_storage t node =
  for i = 0 to node.nblocks - 1 do
    free_block t (nth_block t node i)
  done;
  arena_free_chunk t node.ext_off node.ext_cap;
  node.ext_off <- -1;
  node.ext_cap <- 0;
  node.nblocks <- 0;
  node.size <- 0

let remove_inode t node =
  (match node.kind with Regular -> free_file_storage t node | Dir _ -> ());
  Hashtbl.remove t.inodes node.ino;
  free_inode t node.ino;
  mark_removed t node.ino

let unlink t path =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (dir_ino, entries, base) -> (
    match Hashtbl.find_opt entries base with
    | None -> Error Enoent
    | Some ino -> (
      let node = get_inode t ino in
      match node.kind with
      | Dir d when Hashtbl.length d > 0 -> Error Enotempty
      | Dir _ | Regular ->
        Hashtbl.remove entries base;
        remove_inode t node;
        mark_ino t (get_inode t dir_ino);
        Ok ()))

(* A renamed directory keeps its subtree; the subtree's reachability is
   re-derived through the moved inode, so every descendant must carry a
   dirty mark for the incremental checker to re-walk it. *)
let rec mark_subtree t node =
  mark_ino t node;
  match node.kind with
  | Regular -> ()
  | Dir entries ->
    Hashtbl.iter
      (fun _ ino ->
        match Hashtbl.find_opt t.inodes ino with
        | Some child -> mark_subtree t child
        | None -> mark_removed t ino)
      entries

let rename t ~src ~dst =
  match resolve_parent t src with
  | Error e -> Error e
  | Ok (src_dir, src_entries, src_base) -> (
    match Hashtbl.find_opt src_entries src_base with
    | None -> Error Enoent
    | Some src_ino -> (
      match resolve_parent t dst with
      | Error e -> Error e
      | Ok (dst_dir, dst_entries, dst_base) -> (
        let src_node = get_inode t src_ino in
        let replace_ok =
          match Hashtbl.find_opt dst_entries dst_base with
          | None -> Ok ()
          | Some dst_ino when dst_ino = src_ino -> Ok ()
          | Some dst_ino -> (
            let dst_node = get_inode t dst_ino in
            match (src_node.kind, dst_node.kind) with
            | _, Dir d when Hashtbl.length d > 0 -> Error Enotempty
            | Regular, Dir _ -> Error Eisdir
            | Dir _, Regular -> Error Enotdir
            | _ ->
              Hashtbl.remove dst_entries dst_base;
              remove_inode t dst_node;
              Ok ())
        in
        match replace_ok with
        | Error e -> Error e
        | Ok () ->
          Hashtbl.remove src_entries src_base;
          Hashtbl.replace dst_entries dst_base src_ino;
          src_node.parent <- dst_dir;
          src_node.pname <- dst_base;
          (match src_node.kind with
          | Dir _ -> mark_subtree t src_node
          | Regular -> mark_ino t src_node);
          mark_ino t (get_inode t src_dir);
          mark_ino t (get_inode t dst_dir);
          Ok ())))

let readdir t path =
  match lookup t path with
  | Error e -> Error e
  | Ok ino -> (
    match (get_inode t ino).kind with
    | Regular -> Error Enotdir
    | Dir entries -> Ok (Hashtbl.fold (fun name _ acc -> name :: acc) entries []))

(* ---- attributes ---- *)

type stat_info = {
  st_ino : int;
  st_size : int;
  st_is_dir : bool;
  st_atime : int;
  st_mtime : int;
  st_blocks : int;
}

let stat_of_node node =
  {
    st_ino = node.ino;
    st_size = node.size;
    st_is_dir = (match node.kind with Dir _ -> true | Regular -> false);
    st_atime = node.atime;
    st_mtime = node.mtime;
    st_blocks = node.nblocks;
  }

let stat_ino t ino =
  match Hashtbl.find_opt t.inodes ino with
  | None -> Error Enoent
  | Some node -> Ok (stat_of_node node)

let stat_path t path =
  match lookup t path with Error e -> Error e | Ok ino -> stat_ino t ino

let size_ino t ~ino =
  match Hashtbl.find_opt t.inodes ino with None -> 0 | Some node -> node.size

let set_times t ~ino ~atime ~mtime =
  match Hashtbl.find_opt t.inodes ino with
  | None -> Error Enoent
  | Some node ->
    node.atime <- atime;
    node.mtime <- mtime;
    Ok ()

let mark_atime t ~ino ~now =
  match Hashtbl.find_opt t.inodes ino with
  | None -> ()
  | Some node -> node.atime <- now

let mark_mtime t ~ino ~now =
  match Hashtbl.find_opt t.inodes ino with
  | None -> ()
  | Some node -> node.mtime <- now

(* ---- data layout ---- *)

let page_size = 4096

let pages_needed size = (size + page_size - 1) / page_size

let resize t ~ino ~size =
  match Hashtbl.find_opt t.inodes ino with
  | None -> Error Enoent
  | Some node -> (
    match node.kind with
    | Dir _ -> Error Eisdir
    | Regular ->
      let want = pages_needed size in
      if want > node.nblocks then begin
        let missing = want - node.nblocks in
        if missing > t.total_free_blocks then Error Enospc
        else begin
          let group = ino / t.cfg.inodes_per_group in
          mark_ino t node;
          for _ = 1 to missing do
            let near =
              if node.nblocks = 0 then None
              else Some (nth_block t node (node.nblocks - 1))
            in
            match alloc_block t ~group ~near with
            | None -> assert false (* guarded by the free-count check *)
            | Some b -> push_block t node b
          done;
          node.size <- size;
          Ok ()
        end
      end
      else begin
        let extra = node.nblocks - want in
        if extra > 0 then mark_ino t node;
        for _ = 1 to extra do
          assert (node.nblocks > 0);
          free_block t (nth_block t node (node.nblocks - 1));
          node.nblocks <- node.nblocks - 1
        done;
        node.size <- size;
        Ok ()
      end)

let block_of_page t ~ino ~idx =
  match Hashtbl.find_opt t.inodes ino with
  | None -> None
  | Some node ->
    if idx < 0 || idx >= node.nblocks then None else Some (nth_block t node idx)

let pages_of_file t ~ino =
  match Hashtbl.find_opt t.inodes ino with None -> 0 | Some node -> node.nblocks

let inode_block t ~ino =
  let group = ino / t.cfg.inodes_per_group in
  let slot = ino mod t.cfg.inodes_per_group in
  (group * t.cfg.blocks_per_group) + (slot / inodes_per_block)

(* ---- durability ---- *)

let set_blob t ~ino s =
  match Hashtbl.find_opt t.inodes ino with
  | None -> Error Enoent
  | Some node -> (
    match node.kind with
    | Dir _ -> Error Eisdir
    | Regular ->
      node.blob <- s;
      Ok ())

let blob t ~ino =
  match Hashtbl.find_opt t.inodes ino with None -> "" | Some node -> node.blob

let flush_node node =
  node.dsize <- node.size;
  node.datime <- node.atime;
  node.dmtime <- node.mtime;
  node.dblob <- node.blob

let fsync_ino t ~ino =
  match Hashtbl.find_opt t.inodes ino with
  | None -> Error Enoent
  | Some node ->
    flush_node node;
    Ok ()

let sync_all t = Hashtbl.iter (fun _ node -> flush_node node) t.inodes

let sorted_inos t =
  List.sort compare (Hashtbl.fold (fun ino _ acc -> ino :: acc) t.inodes [])

(* The machine died: every inode's volatile fields roll back to the last
   flushed image.  Sizes shrink (writes only ever grow files and [dsize]
   trails [size]), freeing tail blocks, exactly as a real fsck truncates a
   file to the length its durable inode records.  Allocator cursors reset
   as on a fresh mount, so post-crash allocation is first-fit from slot 0. *)
let crash t =
  List.iter
    (fun ino ->
      let node = get_inode t ino in
      (match node.kind with
      | Regular when node.size <> node.dsize -> (
        match resize t ~ino ~size:node.dsize with
        | Ok () -> ()
        | Error _ -> assert false (* dsize <= size: shrinking cannot fail *))
      | Regular | Dir _ -> ());
      node.atime <- node.datime;
      node.mtime <- node.dmtime;
      node.blob <- node.dblob)
    (sorted_inos t);
  Array.iter
    (fun g ->
      g.rotor <- 0;
      g.inode_hint <- 0)
    t.groups

(* ---- whole-volume snapshot (crash exploration) ---- *)

(* Deep copy of the complete volume state — durable and volatile fields,
   dirty-epoch bookkeeping included, so a checkpoint token taken from the
   original stays valid against the copy and [crash] rolls the copy back
   exactly as it would the original.  The snapshot-mode crash explorer
   clones the volume at each boundary of a single uncrashed run instead
   of replaying the workload prefix once per boundary. *)
let clone t =
  let clone_inode node =
    {
      node with
      kind =
        (match node.kind with
        | Regular -> Regular
        | Dir entries -> Dir (Hashtbl.copy entries));
    }
  in
  let inodes = Hashtbl.create (Hashtbl.length t.inodes) in
  Hashtbl.iter (fun ino node -> Hashtbl.replace inodes ino (clone_inode node)) t.inodes;
  {
    t with
    groups =
      Array.map
        (fun g ->
          { g with block_used = Array.copy g.block_used;
            inode_used = Array.copy g.inode_used })
        t.groups;
    inodes;
    arena = Array.copy t.arena;
    free_chunks = Array.copy t.free_chunks;
    owner = Array.copy t.owner;
    (* dirty_inos / dirty_groups are immutable lists: safe to share *)
  }

(* Exact structural equality of the complete volume state (the same
   fields [clone] copies).  Used as a memoisation key: every subsequent
   check and re-run is a deterministic function of this state, so equal
   states may share one verdict — an exact comparison, not a digest, so
   there is no collision risk of reusing a verdict across genuinely
   different states.  Arena chunks are position-compared, which is exact
   for images of a common lineage (consecutive boundaries of one run)
   and merely conservative otherwise. *)
let equal a b =
  let prefix_equal xs ys n =
    let rec go i = i >= n || (xs.(i) = ys.(i) && go (i + 1)) in
    Array.length xs >= n && Array.length ys >= n && go 0
  in
  let equal_kind ka kb =
    match (ka, kb) with
    | Regular, Regular -> true
    | Dir ea, Dir eb ->
      Hashtbl.length ea = Hashtbl.length eb
      && Hashtbl.fold
           (fun name ino acc -> acc && Hashtbl.find_opt eb name = Some ino)
           ea true
    | Regular, Dir _ | Dir _, Regular -> false
  in
  let equal_inode na nb =
    na.ino = nb.ino && na.size = nb.size && na.ext_off = nb.ext_off
    && na.ext_cap = nb.ext_cap && na.nblocks = nb.nblocks && na.atime = nb.atime
    && na.mtime = nb.mtime && na.blob = nb.blob && na.dsize = nb.dsize
    && na.datime = nb.datime && na.dmtime = nb.dmtime && na.dblob = nb.dblob
    && na.parent = nb.parent && na.pname = nb.pname && na.d_epoch = nb.d_epoch
    && equal_kind na.kind nb.kind
  in
  a.cfg = b.cfg && a.root = b.root
  && a.total_free_blocks = b.total_free_blocks
  && a.total_free_inodes = b.total_free_inodes
  && a.epoch = b.epoch && a.gen = b.gen
  && a.dirty_inos = b.dirty_inos && a.dirty_groups = b.dirty_groups
  && a.arena_used = b.arena_used
  && prefix_equal a.arena b.arena a.arena_used
  && a.free_chunks = b.free_chunks && a.owner = b.owner
  && a.groups = b.groups (* structural: arrays and scalars only *)
  && Hashtbl.length a.inodes = Hashtbl.length b.inodes
  && (try
        Hashtbl.iter
          (fun ino na ->
            match Hashtbl.find_opt b.inodes ino with
            | Some nb when equal_inode na nb -> ()
            | Some _ | None -> raise Exit)
          a.inodes;
        true
      with Exit -> false)

(* ---- fsck ---- *)

(* Full-volume consistency check, used by the crash explorer as the ground
   invariant after every crash+repair — and as the oracle the incremental
   checker is proven against.  Deterministic: inodes and bitmaps are
   scanned in sorted order, so the message list is reproducible. *)
let check_full t =
  (match Tele.active () with
  | None -> ()
  | Some s -> Tele.add_in s "fs.check.full");
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let cfg = t.cfg in
  (* namespace: every inode reachable from the root exactly once *)
  let reached = Hashtbl.create 64 in
  let rec visit path ino =
    if Hashtbl.mem reached ino then add "inode %d double-linked at %s" ino path
    else begin
      Hashtbl.replace reached ino ();
      match Hashtbl.find_opt t.inodes ino with
      | None -> add "dangling entry %s -> missing inode %d" path ino
      | Some node -> (
        match node.kind with
        | Regular -> ()
        | Dir entries ->
          let names =
            List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) entries [])
          in
          List.iter
            (fun name -> visit (path ^ "/" ^ name) (Hashtbl.find entries name))
            names)
    end
  in
  visit "" t.root;
  List.iter
    (fun ino -> if not (Hashtbl.mem reached ino) then add "orphan inode %d" ino)
    (sorted_inos t);
  (* inode bitmaps: table contents, per-group counts, global count *)
  List.iter
    (fun ino ->
      let g = t.groups.(ino / cfg.inodes_per_group) in
      if not g.inode_used.(ino mod cfg.inodes_per_group) then
        add "inode %d exists but its slot is free in the bitmap" ino)
    (sorted_inos t);
  let total_free_inodes = ref 0 in
  Array.iter
    (fun g ->
      let used = ref 0 in
      Array.iteri
        (fun slot u ->
          if u then begin
            incr used;
            let ino = (g.index * cfg.inodes_per_group) + slot in
            if not (Hashtbl.mem t.inodes ino) then
              add "inode slot %d allocated but no inode exists" ino
          end)
        g.inode_used;
      let free = cfg.inodes_per_group - !used in
      if free <> g.inode_free then
        add "group %d: inode free count %d but bitmap says %d" g.index g.inode_free free;
      total_free_inodes := !total_free_inodes + g.inode_free)
    t.groups;
  if !total_free_inodes <> t.total_free_inodes then
    add "total free inodes %d but groups sum to %d" t.total_free_inodes !total_free_inodes;
  (* block ownership: in range, allocated, owned exactly once; and sizes
     agree with block counts *)
  let owner = Hashtbl.create 1024 in
  List.iter
    (fun ino ->
      let node = get_inode t ino in
      (match node.kind with
      | Regular when node.nblocks <> pages_needed node.size ->
        add "inode %d: %d blocks for size %d" ino node.nblocks node.size
      | Regular | Dir _ -> ());
      for i = 0 to node.nblocks - 1 do
        let b = nth_block t node i in
        if b < 0 || b >= cfg.total_blocks then add "inode %d: block %d out of range" ino b
        else begin
          (match Hashtbl.find_opt owner b with
          | Some other -> add "block %d owned by inodes %d and %d" b other ino
          | None -> Hashtbl.replace owner b ino);
          let g = group_of_block t b in
          let offset = b - g.first_block in
          if offset < 0 || offset >= g.data_blocks then
            add "inode %d: block %d lies in an inode-table region" ino b
          else if not g.block_used.(offset) then
            add "inode %d: block %d is free in the bitmap" ino b
        end
      done)
    (sorted_inos t);
  let total_free_blocks = ref 0 in
  Array.iter
    (fun g ->
      let used = ref 0 in
      Array.iteri
        (fun offset u ->
          if u then begin
            incr used;
            let b = g.first_block + offset in
            if not (Hashtbl.mem owner b) then add "block %d allocated but unowned" b
          end)
        g.block_used;
      let free = g.data_blocks - !used in
      if free <> g.block_free then
        add "group %d: block free count %d but bitmap says %d" g.index g.block_free free;
      total_free_blocks := !total_free_blocks + g.block_free)
    t.groups;
  if !total_free_blocks <> t.total_free_blocks then
    add "total free blocks %d but groups sum to %d" t.total_free_blocks !total_free_blocks;
  List.rev !problems

let check = check_full

(* Incremental fsck: re-validate only what was dirtied since the last
   checkpoint.  Soundness rests on three facts: (1) every internal path
   that changes checked state (inode existence, directory entries, block
   attachment, bitmaps, counts) marks the touched inode/group dirty;
   (2) the state at the checkpoint passed [check_full] (the caller's
   contract), so clean inodes and groups still satisfy every local
   invariant; (3) cross-object facts are carried by maintained structures
   ([owner], [parent]/[pname]) that were themselves verified clean at the
   checkpoint.  A token from any other epoch (an older checkpoint, or one
   invalidated by an epoch wrap) cannot vouch for any of that, so the
   checker falls back to the full scan rather than ever missing a
   violation. *)
let check_incremental t cp =
  if cp <> cp_token t then begin
    (match Tele.active () with
    | None -> ()
    | Some s -> Tele.add_in s "fs.check.fallback");
    check_full t
  end
  else begin
    (match Tele.active () with
    | None -> ()
    | Some s -> Tele.add_in s "fs.check.incremental");
    let problems = ref [] in
    let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
    let cfg = t.cfg in
    let dirty = List.sort_uniq compare t.dirty_inos in
    let dgroups = List.sort_uniq compare t.dirty_groups in
    let n_inodes = Hashtbl.length t.inodes in
    (* Best-effort path reconstruction through the parent pointers (only
       used in messages; a broken chain shows up as its own problem). *)
    let path_of ino =
      let rec go ino acc depth =
        if ino = t.root then String.concat "" acc
        else if depth > n_inodes then "?"
        else
          match Hashtbl.find_opt t.inodes ino with
          | None -> "?"
          | Some n -> go n.parent (("/" ^ n.pname) :: acc) (depth + 1)
      in
      go ino [] 0
    in
    (* dirty directories: every entry resolves, and resolves to an inode
       whose back-pointer agrees (the incremental form of the reachability
       visit's dangling / double-link detection) *)
    List.iter
      (fun ino ->
        match Hashtbl.find_opt t.inodes ino with
        | None -> ()
        | Some node -> (
          match node.kind with
          | Regular -> ()
          | Dir entries ->
            let names =
              List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) entries [])
            in
            List.iter
              (fun name ->
                let child = Hashtbl.find entries name in
                let epath = path_of ino ^ "/" ^ name in
                match Hashtbl.find_opt t.inodes child with
                | None -> add "dangling entry %s -> missing inode %d" epath child
                | Some c ->
                  if child <> t.root && (c.parent <> ino || c.pname <> name) then
                    add "inode %d double-linked at %s" child epath)
              names))
      dirty;
    (* dirty inodes: reachability as an O(depth) walk up the parent chain *)
    List.iter
      (fun ino ->
        match Hashtbl.find_opt t.inodes ino with
        | None -> ()
        | Some node ->
          let rec up cur depth =
            if cur = t.root then ()
            else if depth > n_inodes then add "orphan inode %d" ino
            else
              match Hashtbl.find_opt t.inodes cur with
              | None -> add "orphan inode %d" ino
              | Some n -> (
                match Hashtbl.find_opt t.inodes n.parent with
                | None -> add "orphan inode %d" ino
                | Some p -> (
                  match p.kind with
                  | Regular -> add "orphan inode %d" ino
                  | Dir entries -> (
                    match Hashtbl.find_opt entries n.pname with
                    | Some j when j = cur -> up n.parent (depth + 1)
                    | Some _ | None -> add "orphan inode %d" ino)))
          in
          up node.ino 0)
      dirty;
    (* dirty inodes: bitmap slot backs the inode *)
    List.iter
      (fun ino ->
        if Hashtbl.mem t.inodes ino then begin
          let g = t.groups.(ino / cfg.inodes_per_group) in
          if not g.inode_used.(ino mod cfg.inodes_per_group) then
            add "inode %d exists but its slot is free in the bitmap" ino
        end)
      dirty;
    (* dirty groups: inode bitmap recount *)
    List.iter
      (fun gi ->
        let g = t.groups.(gi) in
        let used = ref 0 in
        Array.iteri
          (fun slot u ->
            if u then begin
              incr used;
              let ino = (g.index * cfg.inodes_per_group) + slot in
              if not (Hashtbl.mem t.inodes ino) then
                add "inode slot %d allocated but no inode exists" ino
            end)
          g.inode_used;
        let free = cfg.inodes_per_group - !used in
        if free <> g.inode_free then
          add "group %d: inode free count %d but bitmap says %d" g.index g.inode_free
            free)
      dgroups;
    (* global inode total (trusts per-group counters, which dirty groups
       just re-verified and clean groups kept from the checkpoint) *)
    let total_free_inodes = Array.fold_left (fun a g -> a + g.inode_free) 0 t.groups in
    if total_free_inodes <> t.total_free_inodes then
      add "total free inodes %d but groups sum to %d" t.total_free_inodes
        total_free_inodes;
    (* dirty inodes: block attachment vs the maintained ownership map *)
    List.iter
      (fun ino ->
        match Hashtbl.find_opt t.inodes ino with
        | None -> ()
        | Some node ->
          (match node.kind with
          | Regular when node.nblocks <> pages_needed node.size ->
            add "inode %d: %d blocks for size %d" ino node.nblocks node.size
          | Regular | Dir _ -> ());
          for i = 0 to node.nblocks - 1 do
            let b = nth_block t node i in
            if b < 0 || b >= cfg.total_blocks then
              add "inode %d: block %d out of range" ino b
            else begin
              let ow = t.owner.(b) in
              if ow <> ino && ow >= 0 then
                add "block %d owned by inodes %d and %d" b (min ow ino) (max ow ino);
              let g = group_of_block t b in
              let offset = b - g.first_block in
              if offset < 0 || offset >= g.data_blocks then
                add "inode %d: block %d lies in an inode-table region" ino b
              else if not g.block_used.(offset) then
                add "inode %d: block %d is free in the bitmap" ino b
            end
          done)
      dirty;
    (* dirty groups: block bitmap recount against the ownership map *)
    List.iter
      (fun gi ->
        let g = t.groups.(gi) in
        let used = ref 0 in
        Array.iteri
          (fun offset u ->
            if u then begin
              incr used;
              let b = g.first_block + offset in
              if t.owner.(b) < 0 then add "block %d allocated but unowned" b
            end)
          g.block_used;
        let free = g.data_blocks - !used in
        if free <> g.block_free then
          add "group %d: block free count %d but bitmap says %d" g.index g.block_free
            free)
      dgroups;
    let total_free_blocks = Array.fold_left (fun a g -> a + g.block_free) 0 t.groups in
    if total_free_blocks <> t.total_free_blocks then
      add "total free blocks %d but groups sum to %d" t.total_free_blocks
        total_free_blocks;
    List.rev !problems
  end

(* ---- white-box corruption (differential testing of the checkers) ---- *)

(* Simulate one internal-corruption shape — the kind of damage a buggy
   update path would leave — while keeping the bookkeeping contract every
   internal path honours: whatever object is touched gets its dirty mark
   (and the ownership map tracks the attachment change being modelled).
   The chosen shape and target are a deterministic function of [seed] and
   the current state, so qcheck failures replay. *)
let break_one t ~seed =
  let cfg = t.cfg in
  let candidates = ref [] in
  let offer name f = candidates := (name, f) :: !candidates in
  let owned_blocks =
    lazy
      (let acc = ref [] in
       Array.iteri (fun b ow -> if ow >= 0 then acc := b :: !acc) t.owner;
       List.rev !acc)
  in
  (match Lazy.force owned_blocks with
  | [] -> ()
  | blocks ->
    offer "clear used-block bit" (fun () ->
        let b = List.nth blocks (abs seed mod List.length blocks) in
        let g = group_of_block t b in
        g.block_used.(b - g.first_block) <- false;
        mark_group t g;
        (match Hashtbl.find_opt t.inodes t.owner.(b) with
        | Some node -> mark_ino t node
        | None -> mark_removed t t.owner.(b));
        Printf.sprintf "cleared bitmap bit of owned block %d" b));
  (let g = t.groups.(abs seed mod Array.length t.groups) in
   if g.block_free > 0 then
     offer "set free-block bit" (fun () ->
         let offset = ref 0 in
         while g.block_used.(!offset) do incr offset done;
         g.block_used.(!offset) <- true;
         mark_group t g;
         Printf.sprintf "leaked free block %d" (g.first_block + !offset)));
  offer "skew group free count" (fun () ->
      let g = t.groups.(abs seed mod Array.length t.groups) in
      g.block_free <- g.block_free + 1;
      t.total_free_blocks <- t.total_free_blocks + 1;
      mark_group t g;
      Printf.sprintf "inflated free count of group %d" g.index);
  (let inos = List.filter (fun i -> i <> t.root) (sorted_inos t) in
   match inos with
   | [] -> ()
   | _ ->
     let pick = List.nth inos (abs seed mod List.length inos) in
     offer "clear inode slot" (fun () ->
         let g = t.groups.(pick / cfg.inodes_per_group) in
         g.inode_used.(pick mod cfg.inodes_per_group) <- false;
         g.inode_free <- g.inode_free + 1;
         t.total_free_inodes <- t.total_free_inodes + 1;
         mark_group t g;
         mark_ino t (get_inode t pick);
         Printf.sprintf "freed bitmap slot of live inode %d" pick);
     offer "orphan inode" (fun () ->
         let node = get_inode t pick in
         (match Hashtbl.find_opt t.inodes node.parent with
         | Some { kind = Dir entries; _ } as p ->
           Hashtbl.remove entries node.pname;
           mark_ino t (Option.get p)
         | _ -> ());
         mark_subtree t node;
         Printf.sprintf "removed directory entry of inode %d" pick);
     let regulars =
       List.filter
         (fun i ->
           match Hashtbl.find_opt t.inodes i with
           | Some { kind = Regular; nblocks; _ } -> nblocks > 0
           | _ -> false)
         inos
     in
     (match regulars with
     | [] -> ()
     | _ ->
       let fino = List.nth regulars (abs seed mod List.length regulars) in
       offer "grow size without blocks" (fun () ->
           let node = get_inode t fino in
           node.size <- node.size + page_size;
           mark_ino t node;
           Printf.sprintf "grew inode %d size past its block count" fino);
       offer "steal an owned block" (fun () ->
           let node = get_inode t fino in
           let victim = ref (-1) in
           Array.iteri
             (fun b ow -> if !victim < 0 && ow >= 0 && ow <> fino then victim := b)
             t.owner;
           if !victim < 0 then "no block to steal (no-op)"
           else begin
             let old = nth_block t node (node.nblocks - 1) in
             t.arena.(node.ext_off + node.nblocks - 1) <- !victim;
             (* the abandoned block stays allocated in its bitmap but no
                extent references it any more *)
             t.owner.(old) <- -1;
             mark_ino t node;
             mark_group t (group_of_block t old);
             Printf.sprintf "inode %d now claims block %d, abandoning %d" fino
               !victim old
           end)));
  (let dirs =
     List.filter
       (fun i ->
         match Hashtbl.find_opt t.inodes i with
         | Some { kind = Dir _; _ } -> true
         | _ -> false)
       (sorted_inos t)
   in
   match dirs with
   | [] -> ()
   | _ ->
     offer "dangling entry" (fun () ->
         let dino = List.nth dirs (abs seed mod List.length dirs) in
         let entries =
           match (get_inode t dino).kind with Dir e -> e | Regular -> assert false
         in
         let missing = ref (cfg.inodes_per_group * Array.length t.groups) in
         while Hashtbl.mem t.inodes !missing do incr missing done;
         Hashtbl.replace entries "zz-dangling" !missing;
         mark_ino t (get_inode t dino);
         Printf.sprintf "added dangling entry in directory %d -> %d" dino !missing));
  offer "skew global block total" (fun () ->
      t.total_free_blocks <- t.total_free_blocks + 1;
      "inflated the global free-block total");
  offer "skew global inode total" (fun () ->
      t.total_free_inodes <- t.total_free_inodes + 1;
      "inflated the global free-inode total");
  match List.rev !candidates with
  | [] -> None
  | cands ->
    let _, f = List.nth cands (abs (seed * 7919) mod List.length cands) in
    Some (f ())

(* ---- introspection ---- *)

let layout_of_file t ~ino =
  match Hashtbl.find_opt t.inodes ino with
  | None -> [||]
  | Some node -> Array.init node.nblocks (fun i -> nth_block t node i)

let free_blocks t = t.total_free_blocks
let free_inodes t = t.total_free_inodes

let fragmentation_of_file t ~ino =
  let layout = layout_of_file t ~ino in
  let n = Array.length layout in
  if n < 2 then 0.0
  else begin
    let breaks = ref 0 in
    for i = 1 to n - 1 do
      if layout.(i) <> layout.(i - 1) + 1 then incr breaks
    done;
    float_of_int !breaks /. float_of_int (n - 1)
  end
