(** Per-process resource accounting: flat, pid-indexed attribution of
    everything the simulated machine does on a process's behalf —
    syscalls by kind, page-cache hits and misses, disk traffic and
    bytes, swap traffic, simulated CPU and block time, absorbed fault
    injections, and {e eviction blame} (who evicted whose page).

    Design constraints, in priority order:
    - {b zero allocation on the hot paths}: the kernel caches each
      process's [stats] record in its syscall environment, so a bump is
      one mutable-field store (or one [int array] store for the
      per-syscall-kind counters, keyed by {!Gray_util.Flight.code_index}
      — one vocabulary for recorder and ledger);
    - {b attribution exactness}: every global counter the machine keeps
      (pool hits/misses/evictions, telemetry syscall counters) must
      equal the sum of the per-pid cells within one boot epoch — there
      is no "unattributed" bucket;
    - {b initiator semantics}: costs are charged to the process {e in
      whose syscall they occur}.  A sync-driven writeback is the
      syncing process's cost; an eviction performed while process A
      faults in a page blames A as the evictor, whoever owned the
      victim.

    The ledger is machine state: {!Kernel.restart} resets it (the
    rebooted machine has no processes, so it has no per-process
    history), unlike the experiment-level RNG streams and drift
    schedule which deliberately survive.

    {b Fleet scale.}  The flat blame matrix is capped at a
    1024-pid stride (8 MB); cells naming a higher pid spill to a hash
    table, so a 10⁴–10⁵-process fleet costs memory proportional to the
    blame pairs it actually creates, not to pids².  Rows of processes
    that exit mid-run are {e reaped} on request ({!note_exit} +
    {!reap}): folded into the same name-keyed aggregates the export
    uses, so {!export} is byte-identical before and after a reap while
    the live table stays bounded by concurrent — not cumulative —
    process count.  Reaping is explicit because the pid-level view
    ({!rows}, {!top_table}, {!blame_table}) is still wanted after
    {!Kernel.run} returns (the toolbox's [--top]). *)

type stats = {
  st_pid : int;
  mutable st_name : string;
  sys : int array;
      (** Per-kind syscall counts, indexed by
          {!Gray_util.Flight.code_index} (syscall codes only). *)
  mutable syscalls : int;  (** Total syscall entries. *)
  mutable hits : int;  (** Page-cache hits (file + anon). *)
  mutable misses : int;
  mutable fetches : int;  (** Disk reads performed to fill file pages. *)
  mutable writebacks : int;  (** Dirty file pages written to disk. *)
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable page_ins : int;  (** Swap-ins. *)
  mutable page_outs : int;  (** Swap-outs (anon victims written to swap). *)
  mutable zero_fills : int;
  mutable evictions : int;  (** Evictions this process {e caused}. *)
  mutable evicted : int;  (** This process's anon pages evicted by anyone. *)
  mutable faults : int;  (** Injected syscall faults absorbed. *)
  mutable cpu_ns : int;  (** Simulated CPU service time ({!Kernel.compute}). *)
  mutable block_ns : int;  (** Simulated disk/swap service time. *)
}

type t

val create : unit -> t

val note_spawn : t -> pid:int -> name:string -> stats
(** Register [pid] and return its (zeroed) ledger row.  Called once per
    {!Kernel.spawn}; the kernel caches the row in the process
    environment so per-syscall bumps never look it up. *)

val note_syscall : stats -> Gray_util.Flight.code -> unit

val note_eviction : t -> evictor:stats -> victim_pid:int -> unit
(** Bump the blame matrix cell (evictor, victim) and both sides'
    eviction counters.  [victim_pid = 0] means a file/shared page. *)

val note_exit : t -> pid:int -> unit
(** Mark [pid]'s row as reapable — called by the kernel when the
    process's fiber cleans up.  The row stays visible (and still
    receives victim-side blame) until the next {!reap}. *)

val reap : t -> unit
(** Fold every exited process's row — and every blame cell naming it,
    flat or spilled — into the name-keyed aggregates, then drop the
    pid-level state.  Counterpart names are resolved while all rows are
    still live, and cells are zeroed as they fold, so a cell shared by
    two exited pids is counted exactly once.  {!export} output is
    unchanged by a reap; {!rows} and {!blame_triples} shrink.  Cheap
    when nothing has exited. *)

val reaped_procs : t -> int
(** Processes folded away by {!reap} since boot/reset. *)

val reset : t -> unit
(** Forget every row, the whole blame matrix (flat and spilled), and
    the reaped aggregates — the {!Kernel.restart} path. *)

val find : t -> pid:int -> stats option
val rows : t -> stats list  (** Ascending pid; reaped rows excluded. *)

val blame : t -> evictor:int -> victim:int -> int

val blame_triples : t -> (int * int * int) list
(** Non-zero [(evictor_pid, victim_pid, count)] cells, ascending
    (evictor, victim); victim 0 is the file/shared column. *)

(** {1 Aggregated export}

    Bench tasks boot many kernels (one per trial, hundreds across the
    crash explorer's windows), and pids are only unique within one
    kernel — so the cross-kernel aggregate keys on process {e name}.
    Exports merge associatively in submission order, keeping suite JSON
    byte-identical at any [-j]. *)

type export

val export : t -> export
val merge_exports : export list -> export
val export_is_empty : export -> bool
val export_blame_nonempty : export -> bool
val export_json : export -> Gray_util.Json.t

(** {1 Rendering} *)

val top_table : t -> string
(** A [toolbox top]-style per-process table, one row per pid. *)

val blame_table : t -> string
(** The who-evicted-whom matrix, evictor rows x victim columns. *)

val of_env : unit -> bool
(** Resolve [GRAYBOX_ACCOUNT] (validated once per process): unset,
    empty, [on] or [1] enables accounting — the ledger is on by
    default; [off]/[none]/[0] disables it; anything else is a hard
    configuration error (exit 2). *)
