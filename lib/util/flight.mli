(** Always-on flight recorder: a fixed-capacity ring buffer of recent
    simulator events in {e simulated} time, dumped post-mortem when a
    crash-exploration violation, an ICL exhaustion, or a perf-gate
    failure needs history attached to its verdict.

    The black-box contract:
    - {b bounded cost}: recording is five array stores into preallocated
      buffers — no allocation, no wall-clock reads, no RNG draws — so the
      recorder can stay on under every workload without perturbing the
      simulation or the determinism contract;
    - {b deterministic dumps}: an event is (virtual timestamp, code, pid,
      two small integer arguments).  Rendering depends only on those
      five integers, so the same seed produces byte-identical dumps at
      any [-j];
    - {b fixed vocabulary}: event codes are payload-free variants
      (immediate values), so the code array is an unboxed [int array] at
      runtime and recording a code never allocates.

    The vocabulary spans all four layers — syscall boundaries (Simos),
    evictions and faults (the machine planes), drift epochs (the
    environment plane), and ICL phase transitions (Graybox_core) — which
    is why the recorder lives in [Gray_util]: every layer can record
    without a dependency cycle. *)

type code =
  | Open | Create | Close | Read | Write | Mkdir | Unlink | Rename
  | Readdir | Stat | Utimes | Fsync | Sync | Write_blob | Read_blob
  | Valloc | Vfree | Vrelease | Touch | Vmstat | Compute
      (** Syscall boundaries, recorded at syscall {e entry} (before the
          crash plane's tick, so the boundary that crashes the machine is
          the last event in the ring). *)
  | Evict  (** [a] = victim pid (0 = file/shared page), [b] = 1 if dirty. *)
  | Fault  (** An injected syscall fault absorbed; [a] = target index. *)
  | Disturb  (** Cache-disturbance wave; [a] = pages dropped. *)
  | Pressure  (** Memory-pressure wave; [a] = pages touched. *)
  | Drift  (** Drift-plane mutation applied; [a] = kind index, [b] = arg. *)
  | Stale | Recalibrated | Exhausted
      (** ICL watchdog phase transitions; [a] = watchdog id. *)

val code_name : code -> string
val code_count : int
val code_index : code -> int
(** Dense 0-based index of [code] — [Account] uses it to key per-process
    syscall counters off the same vocabulary. *)

val is_syscall : code -> bool

type t

val default_capacity : int
(** 128 events.  Small enough that booting a recorder per kernel stays
    cheap in the crash explorer's hundreds-of-boots loops, deep enough
    to cover several refresh cycles of pre-crash history. *)

val create : ?capacity:int -> unit -> t
val capacity : t -> int

val recorded : t -> int
(** Total events ever recorded (not the resident count, which is
    [min (recorded t) (capacity t)]). *)

val record : t -> ts:int -> code:code -> pid:int -> a:int -> b:int -> unit
(** Append one event; overwrites the oldest once full.  Zero allocation. *)

val reset : t -> unit

type event = {
  ev_ts : int;  (** simulated nanoseconds *)
  ev_code : code;
  ev_pid : int;
  ev_a : int;
  ev_b : int;
}

val events : ?last:int -> t -> event list
(** Oldest-to-newest; [last] keeps only the most recent N. *)

val line_of : event -> string

val lines : ?last:int -> t -> string list
(** Rendered events, oldest first — the dump-on-trigger payload. *)

val dump : ?last:int -> t -> string
(** [lines] under a one-line header, newline-terminated. *)

val of_env : unit -> t option
(** Resolve [GRAYBOX_FLIGHT] (validated once per process,
    GRAYBOX_TRIALS-style): unset, empty or [on] builds a
    default-capacity recorder — the recorder is {e always on} by
    default; [off]/[none] disables it; an integer [n >= 1] sets the
    capacity; [n < 1] warns and disables; anything unparsable is a hard
    configuration error (exit 2). *)
