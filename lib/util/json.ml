(* Minimal JSON emitter — enough for the bench harness's machine-readable
   perf trajectory without pulling in a JSON dependency.  Output is
   deterministic: fields print in the order given, floats in shortest
   round-trip form via %h-free "%.17g" trimmed, no whitespace games. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null" (* JSON has no NaN *)
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape_string s);
    Buffer.add_char b '"'
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape_string k);
        Buffer.add_string b "\":";
        emit b v)
      fields;
    Buffer.add_char b '}'

(* Pretty printer with two-space indentation, for artifacts meant to be
   read by humans and machines alike. *)
let rec emit_pretty b ~indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> emit b v
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string b "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad';
        emit_pretty b ~indent:(indent + 2) item)
      items;
    Buffer.add_char b '\n';
    Buffer.add_string b pad;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad';
        Buffer.add_char b '"';
        Buffer.add_string b (escape_string k);
        Buffer.add_string b "\": ";
        emit_pretty b ~indent:(indent + 2) v)
      fields;
    Buffer.add_char b '\n';
    Buffer.add_string b pad;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

let to_string_pretty v =
  let b = Buffer.create 1024 in
  emit_pretty b ~indent:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let save v ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_pretty v))

(* Recursive-descent parser, added when the perf gate started consuming
   earlier trajectories (bench --compare).  Accepts standard JSON; numbers
   without '.', 'e' or 'E' that fit an OCaml int parse as [Int], everything
   else as [Float].  Errors carry the byte offset. *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_of_code b code =
    (* enough for the \u escapes the emitter produces (control chars) and
       any BMP code point a foreign producer might write *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' -> utf8_of_code b (parse_hex4 ())
          | c -> fail (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok
    in
    if not is_float then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        (* out of int range: fall back to float *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %s" tok))
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %s" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

(* Tiny query helpers for consumers of parsed trajectories. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
