(* Minimal JSON emitter — enough for the bench harness's machine-readable
   perf trajectory without pulling in a JSON dependency.  Output is
   deterministic: fields print in the order given, floats in shortest
   round-trip form via %h-free "%.17g" trimmed, no whitespace games. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null" (* JSON has no NaN *)
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape_string s);
    Buffer.add_char b '"'
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape_string k);
        Buffer.add_string b "\":";
        emit b v)
      fields;
    Buffer.add_char b '}'

(* Pretty printer with two-space indentation, for artifacts meant to be
   read by humans and machines alike. *)
let rec emit_pretty b ~indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> emit b v
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string b "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad';
        emit_pretty b ~indent:(indent + 2) item)
      items;
    Buffer.add_char b '\n';
    Buffer.add_string b pad;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad';
        Buffer.add_char b '"';
        Buffer.add_string b (escape_string k);
        Buffer.add_string b "\": ";
        emit_pretty b ~indent:(indent + 2) v)
      fields;
    Buffer.add_char b '\n';
    Buffer.add_string b pad;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

let to_string_pretty v =
  let b = Buffer.create 1024 in
  emit_pretty b ~indent:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let save v ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_pretty v))
