(* Always-on flight recorder: see the .mli for the black-box contract.
   Five parallel preallocated arrays keyed by a wrapping head keep
   [record] at five plain stores — the code variant is all-constant, so
   the runtime represents [code array] as an unboxed int array and the
   hot path never allocates. *)

type code =
  | Open | Create | Close | Read | Write | Mkdir | Unlink | Rename
  | Readdir | Stat | Utimes | Fsync | Sync | Write_blob | Read_blob
  | Valloc | Vfree | Vrelease | Touch | Vmstat | Compute
  | Evict
  | Fault
  | Disturb
  | Pressure
  | Drift
  | Stale | Recalibrated | Exhausted

let code_name = function
  | Open -> "open"
  | Create -> "create"
  | Close -> "close"
  | Read -> "read"
  | Write -> "write"
  | Mkdir -> "mkdir"
  | Unlink -> "unlink"
  | Rename -> "rename"
  | Readdir -> "readdir"
  | Stat -> "stat"
  | Utimes -> "utimes"
  | Fsync -> "fsync"
  | Sync -> "sync"
  | Write_blob -> "write_blob"
  | Read_blob -> "read_blob"
  | Valloc -> "valloc"
  | Vfree -> "vfree"
  | Vrelease -> "vrelease"
  | Touch -> "touch"
  | Vmstat -> "vmstat"
  | Compute -> "compute"
  | Evict -> "evict"
  | Fault -> "fault"
  | Disturb -> "fault.disturb"
  | Pressure -> "fault.pressure"
  | Drift -> "drift"
  | Stale -> "icl.stale"
  | Recalibrated -> "icl.recalibrated"
  | Exhausted -> "icl.exhausted"

let code_index = function
  | Open -> 0 | Create -> 1 | Close -> 2 | Read -> 3 | Write -> 4
  | Mkdir -> 5 | Unlink -> 6 | Rename -> 7 | Readdir -> 8 | Stat -> 9
  | Utimes -> 10 | Fsync -> 11 | Sync -> 12 | Write_blob -> 13
  | Read_blob -> 14 | Valloc -> 15 | Vfree -> 16 | Vrelease -> 17
  | Touch -> 18 | Vmstat -> 19 | Compute -> 20
  | Evict -> 21 | Fault -> 22 | Disturb -> 23 | Pressure -> 24
  | Drift -> 25 | Stale -> 26 | Recalibrated -> 27 | Exhausted -> 28

let code_count = 29

let is_syscall c = code_index c <= code_index Compute

(* Drift-event kind indices fixed by the kernel's drift daemon; kept here
   so the renderer names them without depending on Simos. *)
let drift_kind_name = function
  | 0 -> "cache_resize"
  | 1 -> "policy_swap"
  | 2 -> "timer_scale"
  | 3 -> "pressure"
  | k -> "kind" ^ string_of_int k

type t = {
  cap : int;
  ts : int array;
  code : code array;
  pid : int array;
  a : int array;
  b : int array;
  mutable total : int;  (* events ever recorded; head = total mod cap *)
}

let default_capacity = 128

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be >= 1";
  {
    cap = capacity;
    ts = Array.make capacity 0;
    code = Array.make capacity Open;
    pid = Array.make capacity 0;
    a = Array.make capacity 0;
    b = Array.make capacity 0;
    total = 0;
  }

let capacity t = t.cap
let recorded t = t.total

let record t ~ts ~code ~pid ~a ~b =
  let i = t.total mod t.cap in
  t.ts.(i) <- ts;
  t.code.(i) <- code;
  t.pid.(i) <- pid;
  t.a.(i) <- a;
  t.b.(i) <- b;
  t.total <- t.total + 1

let reset t = t.total <- 0

type event = {
  ev_ts : int;
  ev_code : code;
  ev_pid : int;
  ev_a : int;
  ev_b : int;
}

let events ?last t =
  let resident = min t.total t.cap in
  let keep = match last with None -> resident | Some n -> min n resident in
  let out = ref [] in
  (* newest-first walk, cons'ing yields oldest-first *)
  for k = 0 to keep - 1 do
    let i = (t.total - 1 - k) mod t.cap in
    out :=
      {
        ev_ts = t.ts.(i);
        ev_code = t.code.(i);
        ev_pid = t.pid.(i);
        ev_a = t.a.(i);
        ev_b = t.b.(i);
      }
      :: !out
  done;
  !out

let line_of ev =
  let base = Printf.sprintf "[%d] pid=%d %s" ev.ev_ts ev.ev_pid (code_name ev.ev_code) in
  match ev.ev_code with
  | Evict ->
    Printf.sprintf "%s victim=%s%s" base
      (if ev.ev_a = 0 then "file" else "pid" ^ string_of_int ev.ev_a)
      (if ev.ev_b = 1 then " dirty" else "")
  | Fault -> Printf.sprintf "%s target=%d" base ev.ev_a
  | Disturb -> Printf.sprintf "%s dropped=%d" base ev.ev_a
  | Pressure -> Printf.sprintf "%s pages=%d" base ev.ev_a
  | Drift -> Printf.sprintf "%s %s arg=%d" base (drift_kind_name ev.ev_a) ev.ev_b
  | Stale | Recalibrated | Exhausted -> Printf.sprintf "%s icl=%d" base ev.ev_a
  | _ ->
    (* syscall boundary: [a] carries the crash plane's boundary number
       when a plane is installed (0 otherwise) *)
    if ev.ev_a > 0 then Printf.sprintf "%s @%d" base ev.ev_a else base

let lines ?last t = List.map line_of (events ?last t)

let dump ?last t =
  let ls = lines ?last t in
  let header =
    Printf.sprintf "flight recorder: %d event(s) recorded, capacity %d, showing %d"
      t.total t.cap (List.length ls)
  in
  String.concat "\n" (header :: ls) ^ "\n"

(* ---- env control ------------------------------------------------------ *)

(* Validated once per process: [of_env] runs on every [Kernel.boot], and
   the crash explorer boots hundreds of kernels — a sub-1 warning must
   print once, not once per boot. *)
let env_capacity =
  lazy
    (Env.parse ~var:"GRAYBOX_FLIGHT"
       ~expected:"off, on, or a capacity (an integer >= 1)"
       ~on_invalid:`Exit
       ~default:(Some default_capacity)
       (fun token ->
         match token with
         | "off" | "none" -> Env.Value None
         | "on" -> Value (Some default_capacity)
         | s -> (
           match int_of_string_opt s with
           | Some n when n >= 1 -> Value (Some n)
           | Some _ -> Soft ("capacity below 1; flight recorder stays off", None)
           | None -> Invalid)))

let of_env () =
  match Lazy.force env_capacity with
  | None -> None
  | Some cap -> Some (create ~capacity:cap ())
