type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 is used only to expand the seed into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create ~seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* Rejection sampling to avoid modulo bias.  Top-level so the hot path
   ([int] runs on every simulated syscall via the noise plumbing) does not
   allocate a closure per call. *)
let rec draw_int t bound64 limit =
  let raw = Int64.shift_right_logical (bits64 t) 1 in
  let candidate = Int64.rem raw bound64 in
  if Int64.sub raw candidate > limit then draw_int t bound64 limit
  else Int64.to_int candidate

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  draw_int t bound64 (Int64.sub Int64.max_int (Int64.sub bound64 1L))

let int_in t ~min ~max =
  if max < min then invalid_arg "Rng.int_in: max < min";
  min + int t (max - min + 1)

let float t bound =
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float raw *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let rec non_zero_unit t =
  let u = float t 1.0 in
  if u = 0.0 then non_zero_unit t else u

let gaussian t ~mu ~sigma =
  let u1 = non_zero_unit t in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
