(* xoshiro256** with the 256-bit state held in a [Bytes.t].  The mutable
   int64-field record this replaces boxed every intermediate (each
   [Int64] store allocates); [Bytes.get_int64_le]/[set_int64_le] are
   compiler primitives, so the whole step runs on unboxed int64 locals
   and the hot path ([bits64] fires on every simulated syscall and every
   touched page through the noise plumbing) allocates only its boxed
   result.  The draw sequence is bit-identical to the record version. *)
type t = Bytes.t

let get = Bytes.get_int64_le
let set = Bytes.set_int64_le

(* splitmix64 is used only to expand the seed into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let t = Bytes.create 32 in
  set t 0 (splitmix64 state);
  set t 8 (splitmix64 state);
  set t 16 (splitmix64 state);
  set t 24 (splitmix64 state);
  t

let bits64 t =
  let open Int64 in
  let s0 = get t 0 and s1 = get t 8 and s2 = get t 16 and s3 = get t 24 in
  (* rotl written out so no intermediate crosses a function boundary *)
  let r = mul s1 5L in
  let result = mul (logor (shift_left r 7) (shift_right_logical r 57)) 9L in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = logor (shift_left s3 45) (shift_right_logical s3 19) in
  set t 0 s0;
  set t 8 s1;
  set t 16 s2;
  set t 24 s3;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create ~seed

let copy t = Bytes.copy t

(* Rejection sampling to avoid modulo bias.  Top-level so the hot path
   ([int] runs on every simulated syscall via the noise plumbing) does not
   allocate a closure per call. *)
let rec draw_int t bound64 limit =
  let raw = Int64.shift_right_logical (bits64 t) 1 in
  let candidate = Int64.rem raw bound64 in
  if Int64.sub raw candidate > limit then draw_int t bound64 limit
  else Int64.to_int candidate

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  draw_int t bound64 (Int64.sub Int64.max_int (Int64.sub bound64 1L))

let int_in t ~min ~max =
  if max < min then invalid_arg "Rng.int_in: max < min";
  min + int t (max - min + 1)

let float t bound =
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float raw *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let rec non_zero_unit t =
  let u = float t 1.0 in
  if u = 0.0 then non_zero_unit t else u

let gaussian t ~mu ~sigma =
  let u1 = non_zero_unit t in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(* Fused lognormal multiplier, exp(gaussian) with mu = -sigma^2/2 (mean
   1.0).  Lives here rather than in [Dist] so the per-page noise path
   pays one cross-module call and one boxed result; draw-for-draw
   identical to [exp (gaussian t ~mu ~sigma)]. *)
let lognormal_factor t ~sigma =
  if sigma = 0.0 then 1.0
  else begin
    let u1 = non_zero_unit t in
    let u2 = float t 1.0 in
    let mu = -.(sigma *. sigma) /. 2.0 in
    exp (mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)))
  end

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
