(** Strict, uniform parsing of the [GRAYBOX_*] environment variables.

    Every plane (faults, crash, drift, telemetry, accounting, flight
    recorder, OS backend) validates its variable through {!parse}, so a
    bad token always produces the same shape of diagnostic —
    ["GRAYBOX_X=token: expected <grammar>"] — naming both the variable
    and the offending token.  Only the failure {e channel} differs per
    variable (the planes raised [Invalid_argument] or exited with the
    usage code before unification, and tests pin those modes). *)

type 'a outcome =
  | Value of 'a  (** token accepted *)
  | Soft of string * 'a
      (** syntactically valid but degraded: warn with the detail string
          on stderr and use the fallback (e.g. a sub-1 sample rate turns
          telemetry off rather than failing the run) *)
  | Invalid  (** token rejected: fail via [on_invalid] *)

val message : var:string -> token:string -> expected:string -> string
(** ["var=token: expected <expected>"] — the uniform diagnostic. *)

val parse :
  var:string ->
  expected:string ->
  on_invalid:[ `Raise | `Exit ] ->
  default:'a ->
  (string -> 'a outcome) ->
  'a
(** Look up [var]; unset or empty (after trimming) yields [default].
    Otherwise the token is trimmed and lowercased and handed to the
    callback.  [`Raise] fails with [Invalid_argument] (library-level
    misuse, catchable); [`Exit] prints ["error: ..."] and exits with the
    usage code 2 (process-level configuration, not catchable). *)
