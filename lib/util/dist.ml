let rec non_zero_unit rng =
  let u = Rng.float rng 1.0 in
  if u = 0.0 then non_zero_unit rng else u

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  -.log (non_zero_unit rng) /. rate

let lognormal rng ~mu ~sigma = exp (Rng.gaussian rng ~mu ~sigma)

let lognormal_factor = Rng.lognormal_factor

(* Zipf via the classical inverse-harmonic rejection method of Gray et al.
   Constants are cached per (n, theta) because benches draw millions.  The
   cache is domain-local: workloads on separate domains each warm their
   own table instead of racing on a shared [Hashtbl]. *)
let zipf_cache_key : (int * float, float * float * float) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let zipf rng ~n ~theta =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  if theta <= 0.0 then Rng.int rng n
  else begin
    let zipf_cache = Domain.DLS.get zipf_cache_key in
    let zetan, alpha, eta =
      match Hashtbl.find_opt zipf_cache (n, theta) with
      | Some c -> c
      | None ->
        let zetan = ref 0.0 in
        for i = 1 to n do
          zetan := !zetan +. (1.0 /. Float.pow (float_of_int i) theta)
        done;
        let zeta2 = 1.0 +. (1.0 /. Float.pow 2.0 theta) in
        let alpha = 1.0 /. (1.0 -. theta) in
        let eta =
          (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
          /. (1.0 -. (zeta2 /. !zetan))
        in
        let c = (!zetan, alpha, eta) in
        Hashtbl.replace zipf_cache (n, theta) c;
        c
    in
    let u = Rng.float rng 1.0 in
    let uz = u *. zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 theta then 1
    else
      let v =
        float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha
      in
      let k = int_of_float v in
      if k >= n then n - 1 else if k < 0 then 0 else k
  end

let pareto_bounded rng ~shape ~min ~max =
  if shape <= 0.0 || min <= 0.0 || max <= min then
    invalid_arg "Dist.pareto_bounded: bad parameters";
  let u = Rng.float rng 1.0 in
  let la = Float.pow min shape and ha = Float.pow max shape in
  let x = -.((u *. ha) -. (u *. la) -. ha) /. (ha *. la) in
  Float.pow x (-1.0 /. shape)

let sample_without_replacement rng ~k ~n =
  if k > n || k < 0 then invalid_arg "Dist.sample_without_replacement";
  (* Partial Fisher–Yates over an index array. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = Rng.int_in rng ~min:i ~max:(n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k
