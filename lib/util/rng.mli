(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the simulator and of the workload
    generators draws from an explicit [Rng.t] so that experiments are
    reproducible bit-for-bit from a single seed.  The implementation is
    xoshiro256** seeded through splitmix64, which is fast, has a 256-bit
    state, and splits cleanly into independent streams. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] returns a new generator statistically independent from [t];
    [t] itself is advanced.  Used to hand sub-seeds to components. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws). *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] draws uniformly in [\[0, bound)]. Raises
    [Invalid_argument] if [bound <= 0]. *)

val int_in : t -> min:int -> max:int -> int
(** [int_in t ~min ~max] draws uniformly in the inclusive range. *)

val float : t -> float -> float
(** [float t bound] draws uniformly in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val lognormal_factor : t -> sigma:float -> float
(** Mean-1.0 lognormal multiplier, [exp (gaussian ~mu:(-sigma²/2) ~sigma)]
    fused into one call — the simulator's per-syscall / per-page noise
    draw.  Draw-for-draw identical to composing {!gaussian} with [exp]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
