(** Minimal JSON emitter and parser for the bench harness's
    machine-readable output.

    Emission is deterministic (object fields keep the given order).  The
    parser exists for the one place the repo consumes its own output: the
    perf gate ([bench --compare]) reads a previous run's
    [BENCH_suite.json]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line form. *)

val to_string_pretty : t -> string
(** Two-space-indented form, trailing newline. *)

val save : t -> path:string -> unit
(** Write the pretty form to [path] (truncating). *)

val of_string : string -> (t, string) result
(** Parse standard JSON.  Numbers without a fraction or exponent that fit
    an OCaml [int] parse as [Int]; everything else as [Float].  Errors
    carry the byte offset. *)

val load : path:string -> (t, string) result
(** Read and parse a file; I/O errors come back as [Error]. *)

(** {1 Query helpers} *)

val member : string -> t -> t option
(** Field of an [Obj] (first occurrence), [None] otherwise. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both read as float. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
