(** Minimal JSON emitter for the bench harness's machine-readable output.

    Emission is deterministic (object fields keep the given order); there
    is deliberately no parser — the repo only produces trajectories, it
    never consumes them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line form. *)

val to_string_pretty : t -> string
(** Two-space-indented form, trailing newline. *)

val save : t -> path:string -> unit
(** Write the pretty form to [path] (truncating). *)
