(* Unified telemetry plane.  See telemetry.mli for the contract; the two
   load-bearing properties are (a) the disabled path does nothing beyond
   one domain-local read, and (b) everything recorded is deterministic:
   timestamps come from an installed (virtual) clock or a per-sink tick
   counter, sampling is counter-based per name, exporters sort metric
   names and keep trace entries in recording order. *)

type value = Int of int | Float of float | String of string | Bool of bool
type attr = string * value

type mode = Off | Sample of int | Full

let mode_to_string = function
  | Off -> "off"
  | Full -> "full"
  | Sample n -> string_of_int n

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "none" | "" -> Ok Off
  | "full" -> Ok Full
  | s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok (Sample n)
    | Some _ | None ->
      Error "expected off, full, or a sample rate (an integer >= 1)")

let of_env () =
  Env.parse ~var:"GRAYBOX_TELEMETRY"
    ~expected:"off, full, or a sample rate (an integer >= 1)"
    ~on_invalid:`Exit ~default:Off (fun token ->
      match mode_of_string token with
      | Ok m -> Env.Value m
      | Error _ -> (
        match int_of_string_opt token with
        | Some n when n < 1 -> Soft ("sample rate below 1; telemetry stays off", Off)
        | Some _ | None -> Invalid))

(* ---- sinks ------------------------------------------------------------ *)

type metric =
  | Counter of { mutable c : int }
  | Dist of Stats.t
  | Hist of { h : Histogram.t; st : Stats.t; lo : float; hi : float; bins : int }

type entry =
  | Span of { name : string; ts : int; dur : int; spid : int; attrs : attr list }
  | Point of { name : string; ts : int; spid : int; attrs : attr list }

type sink = {
  s_name : string;
  s_mode : mode;
  mutable s_clock : (unit -> int) option;  (* None: the tick fallback *)
  mutable s_tick : int;
  mutable s_rev_entries : entry list;
  mutable s_spans : int;
  mutable s_events : int;
  s_seen : (string, int ref) Hashtbl.t;  (* per-name pre-sampling counts *)
  s_metrics : (string, metric) Hashtbl.t;
}

let create ?(mode = Full) ~name () =
  {
    s_name = name;
    s_mode = mode;
    s_clock = None;
    s_tick = 0;
    s_rev_entries = [];
    s_spans = 0;
    s_events = 0;
    s_seen = Hashtbl.create 32;
    s_metrics = Hashtbl.create 32;
  }

let sink_name s = s.s_name
let sink_mode s = s.s_mode

let now s =
  match s.s_clock with
  | Some f -> f ()
  | None ->
    s.s_tick <- s.s_tick + 1;
    s.s_tick

let ambient : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let active () = Domain.DLS.get ambient
let enabled () = active () <> None
let disabled () = not (enabled ())

let with_sink s f =
  let prev = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some s);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient prev) f

let install_clock f =
  match active () with
  | None -> fun () -> ()
  | Some s ->
    let prev = s.s_clock in
    s.s_clock <- Some f;
    fun () -> s.s_clock <- prev

(* Sampling: the first occurrence of each name is entry 0 and always kept,
   so every span/event kind survives any sample rate. *)
let keep s name =
  let c =
    match Hashtbl.find_opt s.s_seen name with
    | Some c -> c
    | None ->
      let c = ref 0 in
      Hashtbl.replace s.s_seen name c;
      c
  in
  let kept =
    match s.s_mode with
    | Off -> false
    | Full -> true
    | Sample n -> !c mod n = 0
  in
  incr c;
  kept

(* ---- metrics registry ------------------------------------------------- *)

let kind_clash name =
  invalid_arg (Printf.sprintf "Telemetry: metric %s already has another kind" name)

let add_in s ?(n = 1) name =
  match Hashtbl.find_opt s.s_metrics name with
  | Some (Counter m) -> m.c <- m.c + n
  | Some _ -> kind_clash name
  | None -> Hashtbl.replace s.s_metrics name (Counter { c = n })

let observe_in s name v =
  match Hashtbl.find_opt s.s_metrics name with
  | Some (Dist st) -> Stats.add st v
  | Some _ -> kind_clash name
  | None ->
    let st = Stats.empty () in
    Stats.add st v;
    Hashtbl.replace s.s_metrics name (Dist st)

let observe_hist_in s name ~lo ~hi ~bins v =
  match Hashtbl.find_opt s.s_metrics name with
  | Some (Hist m) ->
    Histogram.add m.h v;
    Stats.add m.st v
  | Some _ -> kind_clash name
  | None ->
    let h = Histogram.create ~min:lo ~max:hi ~bins in
    let st = Stats.empty () in
    Histogram.add h v;
    Stats.add st v;
    Hashtbl.replace s.s_metrics name (Hist { h; st; lo; hi; bins })

(* ---- recording -------------------------------------------------------- *)

let eval_attrs = function None -> [] | Some f -> f ()

let span_end s ?attrs ?(spid = 0) name ~ts =
  let dur = max 0 (now s - ts) in
  add_in s (name ^ ".calls");
  observe_in s (name ^ ".ns") (float_of_int dur);
  if keep s name then begin
    s.s_rev_entries <-
      Span { name; ts; dur; spid; attrs = eval_attrs attrs } :: s.s_rev_entries;
    s.s_spans <- s.s_spans + 1
  end

let point s ?attrs ?(spid = 0) name =
  add_in s (name ^ ".count");
  if keep s name then begin
    s.s_rev_entries <-
      Point { name; ts = now s; spid; attrs = eval_attrs attrs } :: s.s_rev_entries;
    s.s_events <- s.s_events + 1
  end

let span ?attrs name f =
  match active () with
  | None -> f ()
  | Some s ->
    let ts = now s in
    let r = f () in
    span_end s ?attrs name ~ts;
    r

let event ?attrs name =
  match active () with None -> () | Some s -> point s ?attrs name

let add ?n name = match active () with None -> () | Some s -> add_in s ?n name

let observe name v =
  match active () with None -> () | Some s -> observe_in s name v

let observe_hist name ~lo ~hi ~bins v =
  match active () with None -> () | Some s -> observe_hist_in s name ~lo ~hi ~bins v

(* ---- introspection ---------------------------------------------------- *)

let span_count s = s.s_spans
let event_count s = s.s_events

let counter_value s name =
  match Hashtbl.find_opt s.s_metrics name with Some (Counter m) -> m.c | _ -> 0

let span_names s =
  Hashtbl.fold (fun name _ acc -> name :: acc) s.s_seen [] |> List.sort compare

(* ---- exporters -------------------------------------------------------- *)

let us_of_ns ns = float_of_int ns /. 1000.0

let json_of_value = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | String s -> Json.String s
  | Bool b -> Json.Bool b

let json_of_attrs attrs =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) attrs)

(* Per-simulated-process track mapping: entries tagged with a non-zero
   [spid] (a simulated pid, recorded when accounting is on) render on
   their own named thread track, tid-packed as [tid * spid_stride +
   spid].  Untagged entries keep the plain [tid], so a trace recorded
   with accounting off is byte-identical to the pre-accounting shape. *)
let spid_stride = 1024

let chrome_events s ~pid ~tid =
  let open Json in
  let entry_spid = function Span { spid; _ } | Point { spid; _ } -> spid in
  let meta ?(tid = tid) name value =
    Obj
      [
        ("ph", String "M");
        ("name", String name);
        ("pid", Int pid);
        ("tid", Int tid);
        ("args", Obj [ ("name", String value) ]);
      ]
  in
  let entry_tid spid = if spid = 0 then tid else (tid * spid_stride) + spid in
  let entry = function
    | Span { name; ts; dur; spid; attrs } ->
      Obj
        ([
           ("ph", String "X");
           ("name", String name);
           ("cat", String name);
           ("pid", Int pid);
           ("tid", Int (entry_tid spid));
           ("ts", Float (us_of_ns ts));
           ("dur", Float (us_of_ns dur));
         ]
        @ if attrs = [] then [] else [ ("args", json_of_attrs attrs) ])
    | Point { name; ts; spid; attrs } ->
      Obj
        ([
           ("ph", String "i");
           ("s", String "t");
           ("name", String name);
           ("cat", String name);
           ("pid", Int pid);
           ("tid", Int (entry_tid spid));
           ("ts", Float (us_of_ns ts));
         ]
        @ if attrs = [] then [] else [ ("args", json_of_attrs attrs) ])
  in
  let spids =
    List.filter_map
      (fun e -> match entry_spid e with 0 -> None | s -> Some s)
      s.s_rev_entries
    |> List.sort_uniq compare
  in
  let spid_metas =
    List.map
      (fun spid ->
        meta ~tid:(entry_tid spid) "thread_name"
          (Printf.sprintf "%s/pid%d" s.s_name spid))
      spids
  in
  (meta "process_name" s.s_name :: meta "thread_name" s.s_name :: spid_metas)
  @ List.rev_map entry s.s_rev_entries

let chrome_trace events = Json.Obj [ ("traceEvents", Json.List events) ]

(* Merged metric views: the export shape for one sink and for an
   aggregate over many is the same. *)
type view =
  | VCounter of int
  | VDist of Stats.t
  | VHist of {
      v_lo : float;
      v_hi : float;
      v_bins : int;
      v_counts : int array;
      v_under : int;
      v_over : int;
      v_st : Stats.t;
    }

let view_of_metric = function
  | Counter m -> VCounter m.c
  | Dist st -> VDist (Stats.merge st (Stats.empty ()))
  | Hist m ->
    VHist
      {
        v_lo = m.lo;
        v_hi = m.hi;
        v_bins = m.bins;
        v_counts = Array.init m.bins (Histogram.bin_count m.h);
        v_under = Histogram.underflow m.h;
        v_over = Histogram.overflow m.h;
        v_st = Stats.merge m.st (Stats.empty ());
      }

let merge_view a b =
  match (a, b) with
  | VCounter x, VCounter y -> VCounter (x + y)
  | VDist x, VDist y -> VDist (Stats.merge x y)
  | VHist x, VHist y when x.v_lo = y.v_lo && x.v_hi = y.v_hi && x.v_bins = y.v_bins ->
    VHist
      {
        x with
        v_counts = Array.mapi (fun i c -> c + y.v_counts.(i)) x.v_counts;
        v_under = x.v_under + y.v_under;
        v_over = x.v_over + y.v_over;
        v_st = Stats.merge x.v_st y.v_st;
      }
  | _ -> invalid_arg "Telemetry: merging metrics of different kinds"

let dist_fields st =
  let open Json in
  [
    ("count", Int (Stats.count st));
    ("mean", Float (Stats.mean st));
    ("min", Float (Stats.min_value st));
    ("max", Float (Stats.max_value st));
    ("total", Float (Stats.total st));
  ]

let json_of_view = function
  | VCounter c -> Json.Int c
  | VDist st -> Json.Obj (dist_fields st)
  | VHist v ->
    Json.Obj
      (dist_fields v.v_st
      @ [
          ("lo", Json.Float v.v_lo);
          ("hi", Json.Float v.v_hi);
          ("underflow", Json.Int v.v_under);
          ("overflow", Json.Int v.v_over);
          ("bins", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) v.v_counts)));
        ])

let merged_views sinks =
  let views : (string, view) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun name m ->
          let v = view_of_metric m in
          match Hashtbl.find_opt views name with
          | None -> Hashtbl.replace views name v
          | Some prev -> Hashtbl.replace views name (merge_view prev v))
        s.s_metrics)
    sinks;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) views []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let metrics_json_of views =
  Json.Obj (List.map (fun (name, v) -> (name, json_of_view v)) views)

let metrics_json s = metrics_json_of (merged_views [ s ])
let merge_metrics_json sinks = metrics_json_of (merged_views sinks)

let summary sinks =
  let views = merged_views sinks in
  (* a span shows up as a <name>.ns distribution with a <name>.calls
     counter next to it; everything else is a plain metric *)
  let strip suffix name =
    let n = String.length name and k = String.length suffix in
    if n > k && String.sub name (n - k) k = suffix then Some (String.sub name 0 (n - k))
    else None
  in
  let counter name =
    match List.assoc_opt (name ^ ".calls") views with
    | Some (VCounter c) -> Some c
    | _ -> None
  in
  let spans =
    List.filter_map
      (fun (name, v) ->
        match (strip ".ns" name, v) with
        | Some base, VDist st -> (
          match counter base with Some c -> Some (base, c, st) | None -> None)
        | _ -> None)
      views
  in
  let span_bases = List.map (fun (b, _, _) -> b) spans in
  let is_span_derived name =
    List.exists
      (fun b -> name = b ^ ".ns" || name = b ^ ".calls")
      span_bases
  in
  let b = Buffer.create 1024 in
  if spans <> [] then begin
    let t =
      Table.create ~title:"spans (simulated time)"
        ~columns:[ "span"; "calls"; "total ms"; "mean us" ]
    in
    List.iter
      (fun (base, calls, st) ->
        Table.add_row t
          [
            base;
            string_of_int calls;
            Printf.sprintf "%.3f" (Stats.total st /. 1e6);
            Printf.sprintf "%.2f" (Stats.mean st /. 1e3);
          ])
      spans;
    Buffer.add_string b (Table.render t)
  end;
  let rest = List.filter (fun (name, _) -> not (is_span_derived name)) views in
  if rest <> [] then begin
    let t = Table.create ~title:"metrics" ~columns:[ "metric"; "value" ] in
    List.iter
      (fun (name, v) ->
        let rendered =
          match v with
          | VCounter c -> string_of_int c
          | VDist st ->
            Printf.sprintf "n=%d mean=%.3f min=%.3f max=%.3f" (Stats.count st)
              (Stats.mean st) (Stats.min_value st) (Stats.max_value st)
          | VHist h ->
            Printf.sprintf "n=%d mean=%.3f [%g, %g) %d bins" (Stats.count h.v_st)
              (Stats.mean h.v_st) h.v_lo h.v_hi h.v_bins
        in
        Table.add_row t [ name; rendered ])
      rest;
    Buffer.add_string b (Table.render t)
  end;
  Buffer.contents b
