(* Fixed pool of worker domains with a shared work queue.

   Jobs are submitted in batches ([map] / [run]); results are collected by
   submission index, so the output order never depends on scheduling.  A
   job that raises does not poison the pool: every job of the batch still
   runs, and the exception of the lowest-indexed failed job is re-raised
   (with its backtrace) in the submitting domain — the same exception a
   serial left-to-right execution would have surfaced first.

   A pool of size <= 1 executes everything inline in the submitting
   domain, so [create ~size:1] is exactly serial execution.  Jobs must not
   submit work back into the pool they run on (the submitting call would
   wait on a queue its own worker can no longer drain). *)

type job = { j_run : unit -> unit }

type t = {
  p_size : int;
  p_mutex : Mutex.t;
  p_work : Condition.t;
  p_queue : job Queue.t;
  mutable p_shutdown : bool;
  mutable p_workers : unit Domain.t list;
}

let size t = t.p_size

let worker t () =
  let rec loop () =
    Mutex.lock t.p_mutex;
    while Queue.is_empty t.p_queue && not t.p_shutdown do
      Condition.wait t.p_work t.p_mutex
    done;
    if Queue.is_empty t.p_queue then Mutex.unlock t.p_mutex (* shutdown *)
    else begin
      let job = Queue.pop t.p_queue in
      Mutex.unlock t.p_mutex;
      job.j_run ();
      loop ()
    end
  in
  loop ()

let create ~size =
  let size = max 1 size in
  let t =
    {
      p_size = size;
      p_mutex = Mutex.create ();
      p_work = Condition.create ();
      p_queue = Queue.create ();
      p_shutdown = false;
      p_workers = [];
    }
  in
  if size > 1 then t.p_workers <- List.init size (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.p_mutex;
  t.p_shutdown <- true;
  Condition.broadcast t.p_work;
  Mutex.unlock t.p_mutex;
  List.iter Domain.join t.p_workers;
  t.p_workers <- []

let map t f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else if t.p_size <= 1 || t.p_workers = [] then
    Array.to_list (Array.map f items)
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = ref n in
    let batch_done = Condition.create () in
    let job i x =
      {
        j_run =
          (fun () ->
            (try results.(i) <- Some (f x)
             with exn ->
               let bt = Printexc.get_raw_backtrace () in
               errors.(i) <- Some (exn, bt));
            Mutex.lock t.p_mutex;
            decr remaining;
            if !remaining = 0 then Condition.broadcast batch_done;
            Mutex.unlock t.p_mutex);
      }
    in
    Mutex.lock t.p_mutex;
    Array.iteri (fun i x -> Queue.add (job i x) t.p_queue) items;
    Condition.broadcast t.p_work;
    while !remaining > 0 do
      Condition.wait batch_done t.p_mutex
    done;
    Mutex.unlock t.p_mutex;
    (* crash propagation: re-raise the first failure by submission index *)
    Array.iter
      (function
        | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
        | None -> ())
      errors;
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false (* no error, so set *))
         results)
  end

let run t thunks = ignore (map t (fun f -> f ()) thunks)
