(** Fixed pool of worker domains with deterministic result collection.

    The pool exists to fan independent, seeded simulations out over
    OCaml 5 domains: results are gathered by submission index, so for
    side-effect-free jobs the outcome of [map] is identical at any pool
    size — including [size:1], which runs everything inline in the
    submitting domain (no worker domains are spawned).

    Jobs must be self-contained: they may freely use domain-local state
    (e.g. [Simos.Engine] keeps its running-engine slot in [Domain.DLS])
    but must not touch mutable state shared with other jobs, and must not
    submit work back into the pool they run on. *)

type t

val create : size:int -> t
(** [create ~size] spawns [size] worker domains ([size <= 1]: none; the
    pool then executes inline and behaves exactly like serial code). *)

val size : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f items] runs [f] on every item, in parallel when the pool has
    workers, and returns the results in submission order.  Every job of
    the batch runs even if some fail; afterwards the exception of the
    lowest-indexed failed job (if any) is re-raised with its original
    backtrace — the same exception serial execution would raise first. *)

val run : t -> (unit -> unit) list -> unit
(** [run t thunks] is [map] for effect-only jobs. *)

val shutdown : t -> unit
(** Terminate and join the workers.  Idempotent.  Calling [map]/[run]
    after [shutdown] executes inline. *)
