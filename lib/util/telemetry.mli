(** Unified telemetry plane: structured spans/events, a metrics registry
    and deterministic exporters.

    The whole reproduction is about *observation* — ICLs inferring hidden
    OS state from probe timings — yet the ICLs themselves were invisible.
    This module gives every layer of the stack (engine, kernel, ICL hot
    paths, benches) one ambient, zero-cost-when-off instrumentation
    surface:

    - {b spans} record an interval of {e simulated} time under a
      dot-separated name ([layer.component.op], e.g. ["simos.kernel.read"],
      ["core.fccd.probe_extent"]) with optional structured attributes;
    - {b events} are instantaneous points (a retry, an injected fault);
    - {b metrics} are named counters / distributions / fixed-bin
      histograms (reusing {!Stats} and {!Histogram}); every span also
      feeds a [<name>.calls] counter and a [<name>.ns] duration
      distribution, so the metrics registry is populated even when the
      trace stream is sampled down.

    Determinism is a hard contract: timestamps come from a clock the
    simulation engine installs (virtual nanoseconds), sampling is
    counter-based (never randomized), and exporters emit in recording
    order with sorted metric names — so a traced run is byte-identical
    across process runs and across any [-j] when each task owns its sink.

    When no sink is installed ({!enabled}[ () = false]) every operation
    reduces to one domain-local read and returns; no allocation beyond
    the caller's closures, no RNG draws, no clock reads — simulation
    results are bit-identical to an uninstrumented build. *)

(** {1 Attributes} *)

type value = Int of int | Float of float | String of string | Bool of bool
type attr = string * value

(** {1 Modes}

    [Sample n] keeps every [n]-th span/event {e per name} in the trace
    stream (the first occurrence of each name is always kept, so a
    sampled trace still shows every span kind at least once); metrics are
    never sampled.  [Full] keeps everything. *)

type mode = Off | Sample of int | Full

val mode_to_string : mode -> string

val mode_of_string : string -> (mode, string) result
(** ["off"]/["none"]/[""] are [Off]; ["full"] is [Full]; an integer [n >= 1]
    is [Sample n].  Anything else is [Error reason]. *)

val of_env : unit -> mode
(** Reads [GRAYBOX_TELEMETRY] with the same warn/error semantics as
    [GRAYBOX_TRIALS]: unset is [Off]; a sample rate below 1 warns on
    stderr and falls back to [Off]; an unparsable value prints an error
    and exits 2. *)

(** {1 Sinks} *)

type sink
(** A sink owns the recorded trace entries and the metrics registry of
    one traced execution (one bench task, one CLI run).  Sinks are not
    thread-safe; give each domain its own. *)

val create : ?mode:mode -> name:string -> unit -> sink
(** [mode] defaults to [Full].  [create ~mode:Off] records nothing but
    still counts metrics. *)

val sink_name : sink -> string
val sink_mode : sink -> mode

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install [sink] as the calling domain's ambient sink for the duration
    of the callback (restoring the previous one afterwards, also on
    exceptions). *)

val active : unit -> sink option
(** The ambient sink of the calling domain, if any.  Hot paths read this
    once and use the [_in] operations below. *)

val enabled : unit -> bool
val disabled : unit -> bool
(** [disabled () = not (enabled ())] — the fast-path guard. *)

(** {1 Clock}

    A sink timestamps entries with its clock, in nanoseconds.  The
    default clock is a per-sink tick counter (monotonic, deterministic);
    {!Simos.Engine.run} installs the virtual clock for the duration of a
    run so spans measure simulated time. *)

val install_clock : (unit -> int) -> unit -> unit
(** [install_clock f] sets the ambient sink's clock to [f] and returns a
    restore function (a no-op when no sink is installed). *)

val now : sink -> int
(** Read the sink's clock. *)

(** {1 Recording (ambient sink)} *)

val span : ?attrs:(unit -> attr list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording the interval under [name].  [attrs]
    is only evaluated when the entry is actually kept.  With no sink
    installed this is just [f ()].  If [f] raises, nothing is recorded. *)

val event : ?attrs:(unit -> attr list) -> string -> unit
val add : ?n:int -> string -> unit
(** Bump counter metric [name] by [n] (default 1). *)

val observe : string -> float -> unit
(** Feed distribution metric [name] (count/mean/stddev/min/max). *)

val observe_hist : string -> lo:float -> hi:float -> bins:int -> float -> unit
(** Feed fixed-bin histogram metric [name]; the bounds are fixed by the
    first call and must not change. *)

(** {1 Recording (explicit sink — hot paths)}

    These skip the domain-local lookup; callers hold the [sink] from one
    {!active} read.  [span_end] records a span that started at clock
    value [ts] and ends now.

    [spid] tags the entry with the {e simulated} pid on whose behalf the
    work happened (0 = untagged, the default): the Chrome exporter maps
    each tagged pid to its own named thread track.  The kernel only
    passes it when per-process accounting is on, so accounting-off
    traces keep the untagged (pre-accounting) byte shape. *)

val span_end :
  sink -> ?attrs:(unit -> attr list) -> ?spid:int -> string -> ts:int -> unit

val point : sink -> ?attrs:(unit -> attr list) -> ?spid:int -> string -> unit
val add_in : sink -> ?n:int -> string -> unit
val observe_in : sink -> string -> float -> unit

(** {1 Introspection} *)

val span_count : sink -> int
(** Spans recorded into the trace stream (post-sampling). *)

val event_count : sink -> int
val counter_value : sink -> string -> int
(** Value of a counter metric; 0 when absent. *)

val span_names : sink -> string list
(** Distinct names seen (pre-sampling), sorted. *)

(** {1 Exporters}

    All exporters are deterministic: trace entries in recording order,
    metrics sorted by name. *)

val chrome_events : sink -> pid:int -> tid:int -> Json.t list
(** The sink's entries as Chrome [trace_event] objects (["ph":"X"]
    complete spans and ["ph":"i"] instants, [ts]/[dur] in microseconds) —
    loadable in Perfetto once wrapped with {!chrome_trace}.  Includes
    process/thread [M]etadata events naming [pid]/[tid] after the sink.
    Entries tagged with a simulated pid ([spid]) render on a dedicated
    thread track [tid * 1024 + spid], named ["<sink>/pid<spid>"] by an
    extra metadata event; untagged entries (and hence whole traces
    recorded with accounting off) keep the plain [tid]. *)

val chrome_trace : Json.t list -> Json.t
(** Wrap merged event lists as [{"traceEvents": [...]}]. *)

val metrics_json : sink -> Json.t
(** The metrics registry: object keyed by metric name (sorted), counters
    as ints, distributions as [{count, mean, min, max, total}],
    histograms additionally with bin counts. *)

val merge_metrics_json : sink list -> Json.t
(** Aggregated view across sinks (counters sum, distributions merge via
    parallel Welford, histogram bins add).  Same shape as
    {!metrics_json}. *)

val summary : sink list -> string
(** Human-readable summary: one table of spans (calls, total/mean
    simulated time) and one of the remaining metrics, aggregated across
    the given sinks. *)
