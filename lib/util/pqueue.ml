(* Backing store is an [Obj.t array] so spare capacity and vacated slots
   can be reset to [dummy]: a plain ['a array] has no value of type ['a]
   to clear slots with, and aliasing live elements instead leaks them
   once they are popped in turn.  [dummy] is an immediate, so the array
   is never specialised to a flat float array and stays safe to fill
   with boxed values. *)
type 'a t = { cmp : 'a -> 'a -> int; mutable data : Obj.t array; mutable size : int }

let dummy = Obj.repr ()

let create ~cmp = { cmp; data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let elt (t : 'a t) i : 'a = Obj.obj t.data.(i)

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ndata = Array.make (max 16 (2 * cap)) dummy in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (elt t i) (elt t parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp (elt t l) (elt t !smallest) < 0 then smallest := l;
  if r < t.size && t.cmp (elt t r) (elt t !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  grow t;
  t.data.(t.size) <- Obj.repr x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some (elt t 0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = elt t 0 in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* the heap must not retain the popped value (engine events hold
         whole fiber continuations) until a later push overwrites it *)
      t.data.(t.size) <- dummy;
      sift_down t 0
    end
    else begin
      (* last element gone: release the value, but keep a small backing
         array so a queue that oscillates around empty (the engine's
         event loop) does not reallocate on every push *)
      t.data.(0) <- dummy;
      if Array.length t.data > 64 then t.data <- [||]
    end;
    Some top
  end

let clear t =
  t.data <- [||];
  t.size <- 0
