(** Imperative binary min-heap, used as the event queue of the simulator.

    Elements are ordered by a comparison supplied at creation; ties must be
    broken by the caller (the engine uses a monotonic sequence number) so
    that simulations are deterministic.

    Popped elements are unreachable from the queue as soon as {!pop}
    returns (the vacated slot is cleared), and draining the queue — via
    {!pop} or {!clear} — releases the backing array, so a parked queue
    never retains dead fibers or their captured state. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
val clear : 'a t -> unit
