(* One strict-validation path for every GRAYBOX_* variable.  Each plane
   keeps its own grammar (the [parse] callback) but the variable name, the
   offending token and the failure channel are rendered uniformly here, so
   a typo in any of the seven variables reads the same way. *)

type 'a outcome = Value of 'a | Soft of string * 'a | Invalid

let message ~var ~token ~expected =
  Printf.sprintf "%s=%s: expected %s" var token expected

let normalize s = String.lowercase_ascii (String.trim s)

let parse ~var ~expected ~on_invalid ~default parse_token =
  match Sys.getenv_opt var with
  | None | Some "" -> default
  | Some raw -> (
    let token = normalize raw in
    if token = "" then default
    else
      match parse_token token with
      | Value v -> v
      | Soft (detail, v) ->
        Printf.eprintf "warning: %s=%s: %s\n%!" var token detail;
        v
      | Invalid -> (
        let msg = message ~var ~token ~expected in
        match on_invalid with
        | `Raise -> invalid_arg msg
        | `Exit ->
          Printf.eprintf "error: %s\n%!" msg;
          exit 2))
