(** Correlation, regression and the other "interpreting measurements"
    primitives called out by the gray toolbox (Section 5) and by the
    Table 1 survey (linear regression, exponential averaging and the
    paired-sample sign test all appear in MS Manners). *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient.  Returns [0.] when either series has
    zero variance.  Raises [Invalid_argument] on length mismatch. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson over fractional ranks, ties
    averaged) — the right accuracy metric for an {e ordering} ICL such as
    FCCD, where only the predicted ranks matter, not the raw probe
    times.  Raises [Invalid_argument] on length mismatch. *)

type regression = { slope : float; intercept : float; r2 : float }

val linear_regression : float array -> float array -> regression
(** Ordinary least squares of y on x. *)

type ema
(** Exponential moving average with fixed smoothing factor. *)

val ema_create : alpha:float -> ema
val ema_add : ema -> float -> float
(** Feed a sample, return the updated average. *)

val ema_value : ema -> float option
(** Current average, [None] before the first sample. *)

val paired_sign_test : float array -> float array -> float
(** [paired_sign_test a b] returns the two-sided p-value of the sign test
    for the paired differences [a.(i) - b.(i)] (ties dropped).  Small
    values mean the two series genuinely differ. *)
