let check_lengths xs ys name =
  if Array.length xs <> Array.length ys then
    invalid_arg (name ^ ": length mismatch")

let pearson xs ys =
  check_lengths xs ys "Correlate.pearson";
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let mx = Stats.mean_of xs and my = Stats.mean_of ys in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then 0.0
    else !sxy /. sqrt (!sxx *. !syy)
  end

(* Fractional (average) ranks, ties sharing their mean rank. *)
let ranks_of xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg = (float_of_int (!i + !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  check_lengths xs ys "Correlate.spearman";
  pearson (ranks_of xs) (ranks_of ys)

type regression = { slope : float; intercept : float; r2 : float }

let linear_regression xs ys =
  check_lengths xs ys "Correlate.linear_regression";
  let n = Array.length xs in
  if n < 2 then invalid_arg "Correlate.linear_regression: need >= 2 points";
  let mx = Stats.mean_of xs and my = Stats.mean_of ys in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx in
    sxy := !sxy +. (dx *. (ys.(i) -. my));
    sxx := !sxx +. (dx *. dx)
  done;
  let slope = if !sxx = 0.0 then 0.0 else !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r = pearson xs ys in
  { slope; intercept; r2 = r *. r }

type ema = { alpha : float; mutable value : float option }

let ema_create ~alpha =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Correlate.ema_create";
  { alpha; value = None }

let ema_add t x =
  let v =
    match t.value with
    | None -> x
    | Some prev -> (t.alpha *. x) +. ((1.0 -. t.alpha) *. prev)
  in
  t.value <- Some v;
  v

let ema_value t = t.value

(* Two-sided sign test.  For the modest sample counts used by ICLs the exact
   binomial tail is cheap and avoids a normal approximation. *)
let paired_sign_test a b =
  check_lengths a b "Correlate.paired_sign_test";
  let pos = ref 0 and neg = ref 0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      if d > 0.0 then incr pos else if d < 0.0 then incr neg)
    a;
  let n = !pos + !neg in
  if n = 0 then 1.0
  else begin
    let k = min !pos !neg in
    (* log-space binomial CDF to stay stable for large n *)
    let log_choose n k =
      let rec sum acc i =
        if i > k then acc
        else
          sum (acc +. log (float_of_int (n - k + i)) -. log (float_of_int i)) (i + 1)
      in
      sum 0.0 1
    in
    let log_half_n = float_of_int n *. log 0.5 in
    let tail = ref 0.0 in
    for i = 0 to k do
      tail := !tail +. exp (log_choose n i +. log_half_n)
    done;
    Float.min 1.0 (2.0 *. !tail)
  end
