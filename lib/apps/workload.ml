open Simos
open Graybox_core

let chunk = 8 * 1024 * 1024

let ok_exn = function
  | Ok v -> v
  | Error e -> failwith ("Workload: syscall failed: " ^ Kernel.error_to_string e)

(* Workload drivers behave like a well-written application: transient
   syscall faults are retried (free when fault injection is off), only
   permanent errors abort the run. *)
let retry f = ok_exn (Resilient.retry f)

let write_file env path size =
  let fd = ok_exn (Kernel.create_file env path) in
  let off = ref 0 in
  while !off < size do
    let len = min chunk (size - !off) in
    ignore (retry (fun () -> Kernel.write env fd ~off:!off ~len));
    off := !off + len
  done;
  Kernel.close env fd

let read_file_in_units env path ~unit_bytes =
  let fd = retry (fun () -> Kernel.open_file env path) in
  let size = Kernel.file_size env fd in
  let off = ref 0 in
  while !off < size do
    ignore
      (retry (fun () -> Kernel.read env fd ~off:!off ~len:(min unit_bytes (size - !off))));
    off := !off + unit_bytes
  done;
  Kernel.close env fd

let read_file env path = read_file_in_units env path ~unit_bytes:chunk

let make_files env ~dir ~prefix ~count ~size =
  (match Kernel.mkdir env dir with
  | Ok () -> ()
  | Error (Kernel.Fs_error Fs.Eexist) -> ()
  | Error e -> failwith ("Workload.make_files: " ^ Kernel.error_to_string e));
  List.init count (fun i ->
      let path = Printf.sprintf "%s/%s%04d" dir prefix i in
      write_file env path size;
      path)

let age_directory env rng ~dir ~deletes ~creates ~size =
  let names = Array.of_list (ok_exn (Kernel.readdir env dir)) in
  Gray_util.Rng.shuffle rng names;
  for i = 0 to min deletes (Array.length names) - 1 do
    ignore (ok_exn (Kernel.unlink env (dir ^ "/" ^ names.(i))))
  done;
  for _ = 1 to creates do
    (* fresh names so aging never recreates a deleted name *)
    let rec fresh () =
      let name = Printf.sprintf "%s/aged%06d" dir (Gray_util.Rng.int rng 1_000_000) in
      match Resilient.retry (fun () -> Kernel.stat env name) with
      | Error _ -> name
      | Ok _ -> fresh ()
    in
    write_file env (fresh ()) size
  done

let paths_in env ~dir =
  List.sort compare (ok_exn (Kernel.readdir env dir))
  |> List.map (fun name -> dir ^ "/" ^ name)
