open Simos
open Graybox_core

let chunk = 8 * 1024 * 1024

let ok_exn = function
  | Ok v -> v
  | Error e -> failwith ("Workload: syscall failed: " ^ Kernel.error_to_string e)

module Make (Os : Os_intf.S) = struct
  module R = Resilient.Make (Os)

  (* Workload drivers behave like a well-written application: transient
     syscall faults are retried (free when fault injection is off), only
     permanent errors abort the run. *)
  let retry f = ok_exn (R.retry f)

  let write_file env path size =
    let fd = ok_exn (Os.create_file env path) in
    let off = ref 0 in
    while !off < size do
      let len = min chunk (size - !off) in
      ignore (retry (fun () -> Os.write env fd ~off:!off ~len));
      off := !off + len
    done;
    Os.close env fd

  let read_file_in_units env path ~unit_bytes =
    let fd = retry (fun () -> Os.open_file env path) in
    let size = Os.file_size env fd in
    let off = ref 0 in
    while !off < size do
      ignore
        (retry (fun () -> Os.read env fd ~off:!off ~len:(min unit_bytes (size - !off))));
      off := !off + unit_bytes
    done;
    Os.close env fd

  let read_file env path = read_file_in_units env path ~unit_bytes:chunk

  let read_prefix env path ~bytes =
    if bytes > 0 then begin
      let fd = retry (fun () -> Os.open_file env path) in
      let size = min bytes (Os.file_size env fd) in
      let off = ref 0 in
      while !off < size do
        let len = min chunk (size - !off) in
        ignore (retry (fun () -> Os.read env fd ~off:!off ~len));
        off := !off + len
      done;
      Os.close env fd
    end

  let make_files env ~dir ~prefix ~count ~size =
    (match Os.mkdir env dir with
    | Ok _ -> ()
    | Error (Kernel.Fs_error Fs.Eexist) -> ()
    | Error e -> failwith ("Workload.make_files: " ^ Kernel.error_to_string e));
    List.init count (fun i ->
        let path = Printf.sprintf "%s/%s%04d" dir prefix i in
        write_file env path size;
        path)

  let age_directory env rng ~dir ~deletes ~creates ~size =
    let names = Array.of_list (ok_exn (Os.readdir env dir)) in
    Gray_util.Rng.shuffle rng names;
    for i = 0 to min deletes (Array.length names) - 1 do
      ignore (ok_exn (Os.unlink env (dir ^ "/" ^ names.(i))))
    done;
    for _ = 1 to creates do
      (* fresh names so aging never recreates a deleted name *)
      let rec fresh () =
        let name = Printf.sprintf "%s/aged%06d" dir (Gray_util.Rng.int rng 1_000_000) in
        match R.retry (fun () -> Os.stat env name) with
        | Error _ -> name
        | Ok _ -> fresh ()
      in
      write_file env (fresh ()) size
    done

  let paths_in env ~dir =
    List.sort compare (ok_exn (Os.readdir env dir))
    |> List.map (fun name -> dir ^ "/" ^ name)
end

include Make (Os_sim)

(* ---- fleet profiles ---------------------------------------------------

   Sim-only: the profiles lean on the engine's fiber scheduler for think
   time and on simulated pids, so they stay on the flat (Os_sim) API. *)

type profile = Scanner | Hot_set | Zipf | Idle

let all_profiles = [ Scanner; Hot_set; Zipf; Idle ]

let profile_name = function
  | Scanner -> "scanner"
  | Hot_set -> "hot-set"
  | Zipf -> "zipf"
  | Idle -> "idle"

let draw_profile rng =
  (* The mixed-fleet mix: a streaming minority churns the cache, hot-set
     and zipf processes have locality worth stealing, and a long tail of
     idlers populates the run queue without much I/O. *)
  match Gray_util.Rng.int rng 10 with
  | 0 | 1 -> Scanner
  | 2 | 3 | 4 -> Hot_set
  | 5 | 6 | 7 -> Zipf
  | _ -> Idle

let fleet_unit = 64 * 1024

let fleet_population env ~dir ~files ~file_kb =
  Array.of_list (make_files env ~dir ~prefix:"f" ~count:files ~size:(file_kb * 1024))

let run_profile env rng profile ~paths ~rounds =
  let n = Array.length paths in
  if n = 0 then invalid_arg "Workload.run_profile: empty population";
  let think () =
    Simos.Engine.delay (500_000 + Gray_util.Rng.int rng 500_000)
  in
  match profile with
  | Scanner ->
    for _ = 1 to rounds do
      (* one streaming pass over the whole population *)
      Array.iter (fun p -> read_file_in_units env p ~unit_bytes:fleet_unit) paths;
      Kernel.compute env ~ns:200_000;
      think ()
    done
  | Hot_set ->
    let k = min n (1 + Gray_util.Rng.int rng 4) in
    let hot = Gray_util.Dist.sample_without_replacement rng ~k ~n in
    for _ = 1 to rounds do
      Array.iter
        (fun i -> read_file_in_units env paths.(i) ~unit_bytes:fleet_unit)
        hot;
      Kernel.compute env ~ns:200_000;
      think ()
    done
  | Zipf ->
    for _ = 1 to rounds do
      let i = Gray_util.Dist.zipf rng ~n ~theta:0.9 in
      read_file_in_units env paths.(i) ~unit_bytes:fleet_unit;
      Kernel.compute env ~ns:200_000;
      think ()
    done
  | Idle ->
    for _ = 1 to rounds do
      Kernel.compute env ~ns:20_000;
      think ()
    done
