(** Workload generation: the file populations and aging churn used by the
    paper's experiments, plus shared chunked-I/O helpers.

    File {e contents} are never materialised — the simulator moves bytes,
    and "which file contains the search pattern" is decided by the
    workload (an oracle), since only the position of matches affects the
    applications' I/O behaviour. *)

val ok_exn : ('a, Simos.Kernel.error) result -> 'a
(** Unwrap a syscall result, failing loudly (workloads are test fixtures;
    their syscalls are not supposed to fail). *)

(** The file-population helpers over any {!Graybox_core.Os_intf.S}
    backend — the host conformance suite and the host [gbp] pipeline use
    them to build real directories on disk. *)
module Make (Os : Graybox_core.Os_intf.S) : sig
  val write_file : Os.env -> string -> int -> unit
  (** Create a file of the given size with chunked sequential writes. *)

  val read_file : Os.env -> string -> unit
  (** Sequential chunked read of the whole file. *)

  val read_file_in_units : Os.env -> string -> unit_bytes:int -> unit

  val read_prefix : Os.env -> string -> bytes:int -> unit
  (** Chunked sequential read of the first [bytes] of the file (clamped to
      the file size; no-op when [bytes <= 0]) — warms a file to a chosen
      cached fraction. *)

  val make_files :
    Os.env ->
    dir:string ->
    prefix:string ->
    count:int ->
    size:int ->
    string list
  (** Create [dir] (if missing) and [count] files of [size] bytes, named
      [prefix ^ index]; returns the paths in creation order. *)

  val age_directory :
    Os.env ->
    Gray_util.Rng.t ->
    dir:string ->
    deletes:int ->
    creates:int ->
    size:int ->
    unit
  (** One aging epoch (Section 4.2.3): delete [deletes] random files from
      the directory, then create [creates] new ones of [size] bytes. *)

  val paths_in : Os.env -> dir:string -> string list
  (** All entries of [dir], sorted by name (a shell glob). *)
end

(** {1 The simulated-backend instance (the historical flat API)} *)

val write_file : Simos.Kernel.env -> string -> int -> unit
val read_file : Simos.Kernel.env -> string -> unit
val read_file_in_units : Simos.Kernel.env -> string -> unit_bytes:int -> unit
val read_prefix : Simos.Kernel.env -> string -> bytes:int -> unit

val make_files :
  Simos.Kernel.env ->
  dir:string ->
  prefix:string ->
  count:int ->
  size:int ->
  string list

val age_directory :
  Simos.Kernel.env ->
  Gray_util.Rng.t ->
  dir:string ->
  deletes:int ->
  creates:int ->
  size:int ->
  unit

val paths_in : Simos.Kernel.env -> dir:string -> string list

(** {1 Fleet profiles}

    Per-process behaviours for multi-tenant fleets
    ([Graybox_core.Fleet]): each fleet member draws a profile and a
    private RNG, then loops rounds of profile-specific I/O, a small
    compute burst, and jittered think time.  Profiles only use the
    gray-box syscall interface, so a fleet is N ordinary applications
    contending for the page cache and CPUs. *)

type profile =
  | Scanner  (** streaming sequential pass over the whole population *)
  | Hot_set  (** re-reads a private hot set of ≤ 4 files *)
  | Zipf  (** per-round file choice, Zipf-skewed (θ = 0.9) *)
  | Idle  (** think time and a token compute burst; occupies a pid *)

val all_profiles : profile list
val profile_name : profile -> string

val draw_profile : Gray_util.Rng.t -> profile
(** The standard fleet mix: 20% scanners, 30% hot-set, 30% zipf,
    20% idle. *)

val fleet_unit : int
(** Read granularity of the profiles (64 KiB). *)

val fleet_population :
  Simos.Kernel.env -> dir:string -> files:int -> file_kb:int -> string array
(** The shared file population fleet members contend over — created once
    by a setup process before the fleet spawns. *)

val run_profile :
  Simos.Kernel.env ->
  Gray_util.Rng.t ->
  profile ->
  paths:string array ->
  rounds:int ->
  unit
(** Run [rounds] rounds of the profile against the shared population.
    Hot-set membership is drawn from [rng] at start-up; all I/O sizes
    and think times are deterministic given ([rng], [profile],
    [paths], [rounds]). *)
