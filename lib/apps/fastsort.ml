open Simos
open Graybox_core

type config = {
  record_bytes : int;
  compare_ns : float;
  input : string;
  run_dir : string;
}

let default_config ~input ~run_dir =
  { record_bytes = 100; compare_ns = 80.0; input; run_dir }

let page = 4096
let io_chunk = 4 * 1024 * 1024

type read_order =
  | Linear
  | Gray_fccd of Fccd.config
  | Via_gbp_out of Fccd.config

(* A pass buffer: heap memory the records are copied into.  Copying [len]
   bytes advances a cursor and touches (writes) the pages it crosses; the
   buffer recycles when full, like reusing the pass arena. *)
type buffer = {
  b_region : Kernel.region;
  b_pages : int;
  mutable b_cursor : int; (* byte offset within the buffer *)
}

let buffer_alloc env ~bytes =
  let pages = (bytes + page - 1) / page in
  { b_region = Kernel.valloc env ~pages; b_pages = pages; b_cursor = 0 }

let buffer_copy_in env b ~len =
  let first_page = b.b_cursor / page in
  let cursor' = b.b_cursor + len in
  let last_page = min (b.b_pages - 1) ((cursor' - 1) / page) in
  ignore
    (Kernel.touch_pages env b.b_region ~first:first_page
       ~count:(last_page - first_page + 1));
  b.b_cursor <- (if cursor' >= b.b_pages * page then 0 else cursor')

let buffer_free env b = Kernel.vfree env b.b_region

(* ---- Figure 3: the read phase ---- *)

let consume_extent env fd buffer ~off ~len =
  let cur = ref off in
  let stop = off + len in
  while !cur < stop do
    let chunk = min io_chunk (stop - !cur) in
    ignore (Workload.ok_exn (Kernel.read env fd ~off:!cur ~len:chunk));
    buffer_copy_in env buffer ~len:chunk;
    cur := !cur + chunk
  done

let read_phase_only env config ~order ~pass_bytes =
  let t0 = Kernel.gettime env in
  let buffer = buffer_alloc env ~bytes:pass_bytes in
  (match order with
  | Linear ->
    let fd = Workload.ok_exn (Kernel.open_file env config.input) in
    let size = Kernel.file_size env fd in
    let off = ref 0 in
    while !off < size do
      let len = min io_chunk (size - !off) in
      ignore (Workload.ok_exn (Kernel.read env fd ~off:!off ~len));
      buffer_copy_in env buffer ~len;
      off := !off + len
    done;
    Kernel.close env fd
  | Gray_fccd fccd ->
    (* "replacing the read code (about 50 lines), and adding a probe phase
       before the main sorting loop (another 5)" — with record-aligned
       extents so records never straddle access units *)
    let fccd = Fccd.with_align fccd config.record_bytes in
    let fd = Workload.ok_exn (Kernel.open_file env config.input) in
    let plan = Fccd.probe_fd env fccd ~path:config.input fd in
    List.iter
      (fun (e, _) -> consume_extent env fd buffer ~off:e.Fccd.ext_off ~len:e.Fccd.ext_len)
      plan.Fccd.plan_extents;
    Kernel.close env fd
  | Via_gbp_out fccd ->
    let fccd = Fccd.with_align fccd config.record_bytes in
    ignore
      (Workload.ok_exn
         (Gbp.out env fccd ~path:config.input ~consume:(fun ~off:_ ~len ->
              buffer_copy_in env buffer ~len))));
  buffer_free env buffer;
  Kernel.gettime env - t0

(* ---- Figure 7: full phase 1 under a pass policy ---- *)

type pass_policy =
  | Static_pass of int
  | Mac_adaptive of { mac : Mac.config; min_bytes : int; retry_ns : int }

type phase_times = {
  pt_read : int;
  pt_sort : int;
  pt_write : int;
  pt_overhead : int;
  pt_passes : int;
  pt_pass_bytes : int list;
}

let total_ns t = t.pt_read + t.pt_sort + t.pt_write + t.pt_overhead

(* Memory for one pass, however the policy obtains it. *)
type pass_memory =
  | Buffer of buffer
  | Mac_alloc of Mac.allocation

let pass_region = function
  | Buffer b -> (b.b_region, b.b_pages)
  | Mac_alloc a -> (Mac.region a, Mac.pages a)

let sort_records env config mem ~bytes =
  let records = max 1 (bytes / config.record_bytes) in
  let comparisons =
    float_of_int records *. (log (float_of_int records) /. log 2.0)
  in
  (* the sort streams over the keys a couple of times while comparing *)
  let region, pages = pass_region mem in
  ignore (Kernel.touch_pages env region ~first:0 ~count:pages);
  Kernel.compute env ~ns:(int_of_float (comparisons *. config.compare_ns));
  ignore (Kernel.touch_pages env region ~first:0 ~count:pages)

let write_run env mem ~run_path ~bytes =
  let region, pages = pass_region mem in
  let fd = Workload.ok_exn (Kernel.create_file env run_path) in
  let off = ref 0 in
  while !off < bytes do
    let len = min io_chunk (bytes - !off) in
    (* gather the records from the heap, then write them out *)
    let first_page = !off / page in
    let last_page = min (pages - 1) ((!off + len - 1) / page) in
    ignore (Kernel.touch_pages env region ~first:first_page ~count:(last_page - first_page + 1));
    ignore (Workload.ok_exn (Kernel.write env fd ~off:!off ~len));
    off := !off + len
  done;
  Kernel.close env fd

let run_phase1 env config ~policy ~total_bytes =
  (* distinguishes run files across repeated phase-1 invocations; the
     (pid, token) pair is unique per kernel and involves no global state,
     keeping concurrent simulations on other domains bit-identical *)
  let invocation = ref (Kernel.fresh_token env) in
  (match Kernel.mkdir env config.run_dir with
  | Ok () | Error (Kernel.Fs_error Fs.Eexist) -> ()
  | Error e -> failwith ("Fastsort: mkdir runs: " ^ Kernel.error_to_string e));
  let input_fd = Workload.ok_exn (Kernel.open_file env config.input) in
  let read_t = ref 0 and sort_t = ref 0 and write_t = ref 0 and overhead_t = ref 0 in
  let passes = ref 0 and pass_sizes = ref [] in
  let consumed = ref 0 in
  let timed_into slot f =
    let t0 = Kernel.gettime env in
    let r = f () in
    slot := !slot + (Kernel.gettime env - t0);
    r
  in
  while !consumed < total_bytes do
    let remaining = total_bytes - !consumed in
    (* acquire the pass memory *)
    let mem, pass_bytes =
      match policy with
      | Static_pass bytes ->
        let pass = min bytes remaining in
        (Buffer (buffer_alloc env ~bytes:pass), pass)
      | Mac_adaptive { mac; min_bytes; retry_ns } ->
        (* requests are record-aligned; a final sub-record sliver (input
           not a whole number of records) is read with a plain buffer *)
        let max_req = remaining / config.record_bytes * config.record_bytes in
        if max_req = 0 then (Buffer (buffer_alloc env ~bytes:remaining), remaining)
        else begin
          let min_req =
            max config.record_bytes
              (min min_bytes max_req / config.record_bytes * config.record_bytes)
          in
          let rec acquire () =
            let result =
              timed_into overhead_t (fun () ->
                  Mac.gb_alloc env mac ~min:min_req ~max:max_req
                    ~multiple:config.record_bytes)
            in
            match result with
            | Some a -> a
            | None ->
              (* the paper's anticipated use: try again after waiting *)
              timed_into overhead_t (fun () -> Engine.delay retry_ns);
              acquire ()
          in
          let a = acquire () in
          (Mac_alloc a, Mac.bytes a)
        end
    in
    let pass = min pass_bytes remaining in
    incr passes;
    pass_sizes := pass :: !pass_sizes;
    (* read: copy records from the input into the pass memory *)
    timed_into read_t (fun () ->
        let region, pages = pass_region mem in
        let off = ref 0 in
        while !off < pass do
          let len = min io_chunk (pass - !off) in
          ignore
            (Workload.ok_exn (Kernel.read env input_fd ~off:(!consumed + !off) ~len));
          let first_page = !off / page in
          let last_page = min (pages - 1) ((!off + len - 1) / page) in
          ignore
            (Kernel.touch_pages env region ~first:first_page
               ~count:(last_page - first_page + 1));
          off := !off + len
        done);
    timed_into sort_t (fun () -> sort_records env config mem ~bytes:pass);
    let run_path =
      Printf.sprintf "%s/run.p%d.i%d.%d" config.run_dir (Kernel.pid env) !invocation
        !passes
    in
    timed_into write_t (fun () -> write_run env mem ~run_path ~bytes:pass);
    (match mem with
    | Buffer b -> buffer_free env b
    | Mac_alloc a -> Mac.gb_free env a);
    consumed := !consumed + pass
  done;
  Kernel.close env input_fd;
  {
    pt_read = !read_t;
    pt_sort = !sort_t;
    pt_write = !write_t;
    pt_overhead = !overhead_t;
    pt_passes = !passes;
    pt_pass_bytes = List.rev !pass_sizes;
  }
